package dag

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// diamond builds a 4-node diamond A -> (B, C) -> D.
func diamond() (*Graph, *Node, *Node, *Node, *Node) {
	g := New("diamond")
	a := g.AddNode("A", "computation", 10e9, 0)
	b := g.AddNode("B", "computation", 20e9, 0)
	c := g.AddNode("C", "computation", 5e9, 0)
	d := g.AddNode("D", "computation", 10e9, 0)
	g.AddEdge(a, b, 1e6)
	g.AddEdge(a, c, 1e6)
	g.AddEdge(b, d, 1e6)
	g.AddEdge(c, d, 1e6)
	return g, a, b, c, d
}

func TestAmdahlTime(t *testing.T) {
	n := &Node{Work: 100e9, SerialFraction: 0.2}
	speed := 1e9
	if got := n.Time(1, speed); math.Abs(got-100) > 1e-9 {
		t.Errorf("T(1) = %g, want 100", got)
	}
	// p=4: 100 * (0.2 + 0.8/4) = 40
	if got := n.Time(4, speed); math.Abs(got-40) > 1e-9 {
		t.Errorf("T(4) = %g, want 40", got)
	}
	// Monotone non-increasing in p.
	prev := math.Inf(1)
	for p := 1; p <= 64; p++ {
		cur := n.Time(p, speed)
		if cur > prev+1e-12 {
			t.Fatalf("T not monotone at p=%d", p)
		}
		prev = cur
	}
	// Asymptote is the serial fraction.
	if got := n.Time(1<<20, speed); got < 20 {
		t.Errorf("T(inf) = %g, must stay above serial time 20", got)
	}
	if n.Time(0, speed) != n.Time(1, speed) {
		t.Error("p<1 should clamp to 1")
	}
	if n.Time(4, 0) != 0 {
		t.Error("zero speed returns 0")
	}
}

func TestTopoOrderAndValidate(t *testing.T) {
	g, a, b, c, d := diamond()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos[a] > pos[b] || pos[a] > pos[c] || pos[b] > pos[d] || pos[c] > pos[d] {
		t.Fatal("topological order violated")
	}
	// Introduce a cycle.
	g.AddEdge(d, a, 0)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestValidateFieldErrors(t *testing.T) {
	g := New("bad")
	n := g.AddNode("n", "x", -1, 0)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "negative work") {
		t.Fatalf("err = %v", err)
	}
	n.Work = 1
	n.SerialFraction = 1.5
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "serial fraction") {
		t.Fatalf("err = %v", err)
	}
	n.SerialFraction = 0
	m := g.AddNode("m", "x", 1, 0)
	g.AddEdge(n, m, -5)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "negative edge") {
		t.Fatalf("err = %v", err)
	}
}

func TestLevels(t *testing.T) {
	g, a, b, c, d := diamond()
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if levels[a.ID] != 0 || levels[b.ID] != 1 || levels[c.ID] != 1 || levels[d.ID] != 2 {
		t.Fatalf("levels = %v", levels)
	}
	sets, err := g.LevelSets()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 || len(sets[1]) != 2 {
		t.Fatalf("level sets = %v", sets)
	}
}

func TestCriticalPath(t *testing.T) {
	g, a, b, _, d := diamond()
	speed := 1e9
	alloc := map[int]int{} // all p=1
	timeOf := func(n *Node) float64 { return n.Time(alloc[n.ID]+1, speed) }
	cp, path, err := g.CriticalPath(timeOf)
	if err != nil {
		t.Fatal(err)
	}
	// A(10) -> B(20) -> D(10) = 40
	if math.Abs(cp-40) > 1e-9 {
		t.Fatalf("cp = %g, want 40", cp)
	}
	want := []int{a.ID, b.ID, d.ID}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("path = %v, want %v", path, want)
	}
	// Empty graph.
	if cp, _, err := New("e").CriticalPath(func(*Node) float64 { return 0 }); err != nil || cp != 0 {
		t.Fatal("empty graph critical path")
	}
}

func TestSourcesSinksTotals(t *testing.T) {
	g, a, _, _, d := diamond()
	if src := g.Sources(); len(src) != 1 || src[0] != a {
		t.Fatal("sources wrong")
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != d {
		t.Fatal("sinks wrong")
	}
	if g.TotalWork() != 45e9 {
		t.Fatalf("TotalWork = %g", g.TotalWork())
	}
	if g.Len() != 4 || len(g.Edges()) != 4 {
		t.Fatal("counts wrong")
	}
}

func TestClone(t *testing.T) {
	g, _, b, _, _ := diamond()
	c := g.Clone()
	if c.Len() != g.Len() || len(c.Edges()) != len(g.Edges()) {
		t.Fatal("clone size wrong")
	}
	c.Nodes()[b.ID].Work = 999
	if g.Nodes()[b.ID].Work == 999 {
		t.Fatal("clone shares nodes")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []Shape{ShapeSerial, ShapeWide, ShapeLong, ShapeRandom, ShapeForkJoin} {
		t.Run(shape.String(), func(t *testing.T) {
			g := Generate(shape, DefaultGenOptions(40), rng)
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.Len() < 30 {
				t.Fatalf("%s generated only %d nodes", shape, g.Len())
			}
			sets, _ := g.LevelSets()
			switch shape {
			case ShapeSerial:
				if len(sets) != g.Len() {
					t.Error("serial DAG must be a chain")
				}
			case ShapeWide:
				if len(sets) != 3 {
					t.Errorf("wide DAG has %d levels, want 3", len(sets))
				}
			case ShapeLong:
				if len(sets) < g.Len()/4 {
					t.Errorf("long DAG too short: %d levels", len(sets))
				}
			}
			// Work bounds respected.
			for _, n := range g.Nodes() {
				if n.Work < 1e9-1 || n.Work > 5e10+1 {
					t.Fatalf("work %g outside range", n.Work)
				}
			}
		})
	}
	if Shape(99).String() != "shape(?)" {
		t.Error("unknown shape string")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ShapeRandom, DefaultGenOptions(30), rand.New(rand.NewSource(7)))
	b := Generate(ShapeRandom, DefaultGenOptions(30), rand.New(rand.NewSource(7)))
	if a.Len() != b.Len() || len(a.Edges()) != len(b.Edges()) {
		t.Fatal("generator not deterministic")
	}
	for i, n := range a.Nodes() {
		if n.Work != b.Nodes()[i].Work {
			t.Fatal("node works differ")
		}
	}
}

func TestImbalancedLayer(t *testing.T) {
	g := ImbalancedLayer(5, 8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	sets, _ := g.LevelSets()
	if len(sets) != 3 || len(sets[1]) != 5 {
		t.Fatalf("level structure = %v", sets)
	}
	// The expensive task dominates its siblings by the requested factor.
	var works []float64
	for _, id := range sets[1] {
		works = append(works, g.Nodes()[id].Work)
	}
	maxW, minW := works[0], works[0]
	for _, w := range works {
		maxW = math.Max(maxW, w)
		minW = math.Min(minW, w)
	}
	if math.Abs(maxW/minW-8) > 1e-9 {
		t.Fatalf("cost ratio = %g, want 8", maxW/minW)
	}
}

func TestStatsString(t *testing.T) {
	g, _, _, _, _ := diamond()
	s := g.Stats()
	for _, want := range []string{"4 nodes", "4 edges", "3 levels", "max width 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats %q missing %q", s, want)
		}
	}
}
