package dag

import (
	"fmt"
	"math/rand"
	"strings"
)

// Shape selects one of the DAG families of the paper's m-task evaluation
// ("different types of DAGs (long, wide, serial, etc.)").
type Shape int

const (
	// ShapeSerial is a pure chain: maximal length, width 1.
	ShapeSerial Shape = iota
	// ShapeWide is a single parallel layer between source and sink.
	ShapeWide
	// ShapeLong is a tall layered graph with narrow layers.
	ShapeLong
	// ShapeRandom is a layered random graph with mixed widths.
	ShapeRandom
	// ShapeForkJoin is repeated fork-join diamonds.
	ShapeForkJoin
)

func (s Shape) String() string {
	switch s {
	case ShapeSerial:
		return "serial"
	case ShapeWide:
		return "wide"
	case ShapeLong:
		return "long"
	case ShapeRandom:
		return "random"
	case ShapeForkJoin:
		return "forkjoin"
	default:
		return "shape(?)"
	}
}

// Shapes returns all generator shapes in declaration order.
func Shapes() []Shape {
	return []Shape{ShapeSerial, ShapeWide, ShapeLong, ShapeRandom, ShapeForkJoin}
}

// ParseShape resolves a shape name as printed by Shape.String.
func ParseShape(name string) (Shape, error) {
	for _, s := range Shapes() {
		if s.String() == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Shapes()))
	for _, s := range Shapes() {
		names = append(names, s.String())
	}
	return 0, fmt.Errorf("dag: unknown shape %q (known: %s)", name, strings.Join(names, ", "))
}

// GenOptions parameterizes Generate.
type GenOptions struct {
	Nodes          int     // approximate node count (>= 2)
	WorkMin        float64 // per-node work range, flop
	WorkMax        float64
	SerialFraction float64 // Amdahl fraction of every node
	EdgeBytes      float64 // data per edge
}

// DefaultGenOptions returns the parameters used by the benchmark harness:
// tasks between 1 and 50 Gflop with 5% serial fraction.
func DefaultGenOptions(nodes int) GenOptions {
	return GenOptions{
		Nodes: nodes, WorkMin: 1e9, WorkMax: 5e10,
		SerialFraction: 0.05, EdgeBytes: 1e7,
	}
}

// Generate builds a random DAG of the given shape. The generator is
// deterministic for a given rng state.
func Generate(shape Shape, opt GenOptions, rng *rand.Rand) *Graph {
	if opt.Nodes < 2 {
		opt.Nodes = 2
	}
	work := func() float64 {
		if opt.WorkMax <= opt.WorkMin {
			return opt.WorkMin
		}
		return opt.WorkMin + rng.Float64()*(opt.WorkMax-opt.WorkMin)
	}
	g := New(shape.String())
	switch shape {
	case ShapeSerial:
		prev := g.AddNode("n0", "computation", work(), opt.SerialFraction)
		for i := 1; i < opt.Nodes; i++ {
			n := g.AddNode(fmt.Sprintf("n%d", i), "computation", work(), opt.SerialFraction)
			g.AddEdge(prev, n, opt.EdgeBytes)
			prev = n
		}
	case ShapeWide:
		src := g.AddNode("src", "computation", work(), opt.SerialFraction)
		sink := g.AddNode("sink", "computation", work(), opt.SerialFraction)
		for i := 0; i < opt.Nodes-2; i++ {
			n := g.AddNode(fmt.Sprintf("w%d", i), "computation", work(), opt.SerialFraction)
			g.AddEdge(src, n, opt.EdgeBytes)
			g.AddEdge(n, sink, opt.EdgeBytes)
		}
	case ShapeLong:
		g = layered(g, opt, rng, 1, 3, work)
	case ShapeRandom:
		g = layered(g, opt, rng, 1, 8, work)
	case ShapeForkJoin:
		prev := g.AddNode("j0", "computation", work(), opt.SerialFraction)
		i := 1
		for g.Len() < opt.Nodes-1 {
			width := 2 + rng.Intn(3)
			join := g.AddNode(fmt.Sprintf("j%d", i), "computation", work(), opt.SerialFraction)
			for k := 0; k < width && g.Len() <= opt.Nodes; k++ {
				n := g.AddNode(fmt.Sprintf("f%d_%d", i, k), "computation", work(), opt.SerialFraction)
				g.AddEdge(prev, n, opt.EdgeBytes)
				g.AddEdge(n, join, opt.EdgeBytes)
			}
			prev = join
			i++
		}
	}
	return g
}

// layered builds a layer-structured random DAG with layer widths drawn from
// [wMin, wMax]; every node has at least one predecessor in the previous
// layer.
func layered(g *Graph, opt GenOptions, rng *rand.Rand, wMin, wMax int, work func() float64) *Graph {
	var prevLayer []*Node
	i := 0
	for g.Len() < opt.Nodes {
		width := wMin
		if wMax > wMin {
			width += rng.Intn(wMax - wMin + 1)
		}
		if rem := opt.Nodes - g.Len(); width > rem {
			width = rem
		}
		var layer []*Node
		for k := 0; k < width; k++ {
			n := g.AddNode(fmt.Sprintf("l%d_%d", i, k), "computation", work(), opt.SerialFraction)
			layer = append(layer, n)
		}
		for _, n := range layer {
			if len(prevLayer) == 0 {
				continue
			}
			// one guaranteed predecessor plus random extras
			g.AddEdge(prevLayer[rng.Intn(len(prevLayer))], n, opt.EdgeBytes)
			for _, p := range prevLayer {
				if rng.Float64() < 0.25 {
					if !hasEdge(p, n) {
						g.AddEdge(p, n, opt.EdgeBytes)
					}
				}
			}
		}
		prevLayer = layer
		i++
	}
	return g
}

func hasEdge(from, to *Node) bool {
	for _, e := range from.succs {
		if e.To == to {
			return true
		}
	}
	return false
}

// ImbalancedLayer builds the Figure 4 scenario: a source task, one
// precedence layer whose tasks have very different costs (the paper points
// at "tasks 2 and 5"), and a sink. MCPA caps the per-level allocation at the
// cluster size, so with `width` tasks on a `hosts`-processor cluster each
// task gets few processors and the expensive task dominates the level —
// the load-imbalance hole of the figure. CPA lets the expensive task's
// allocation grow instead.
//
// bigFactor is the cost ratio between the expensive task and its siblings.
func ImbalancedLayer(width int, bigFactor float64) *Graph {
	g := New("imbalanced-layer")
	base := 4e9
	src := g.AddNode("1", "computation", base, 0.02)
	sink := g.AddNode(fmt.Sprintf("%d", width+2), "computation", base, 0.02)
	for i := 0; i < width; i++ {
		w := base
		if i == 0 {
			w = base * bigFactor
		}
		n := g.AddNode(fmt.Sprintf("%d", i+2), "computation", w, 0.02)
		g.AddEdge(src, n, 1e7)
		g.AddEdge(n, sink, 1e7)
	}
	return g
}
