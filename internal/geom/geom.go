// Package geom provides the small amount of 2D geometry shared by the
// renderer and the interactive viewport: axis-aligned rectangles and linear
// world/screen transforms.
package geom

// Rect is an axis-aligned rectangle with origin (X, Y) at the top-left.
type Rect struct {
	X, Y, W, H float64
}

// Contains reports whether the point lies inside the rectangle (borders
// inclusive).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x <= r.X+r.W && y >= r.Y && y <= r.Y+r.H
}

// Empty reports whether the rectangle covers no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Intersect returns the overlapping region (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x0 := maxf(r.X, o.X)
	y0 := maxf(r.Y, o.Y)
	x1 := minf(r.X+r.W, o.X+o.W)
	y1 := minf(r.Y+r.H, o.Y+o.H)
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Inset shrinks the rectangle by d on every side.
func (r Rect) Inset(d float64) Rect {
	return Rect{r.X + d, r.Y + d, r.W - 2*d, r.H - 2*d}
}

// Transform maps a world window (time on x, resource index on y) onto a
// screen rectangle.
type Transform struct {
	// World window.
	TimeMin, TimeMax float64
	RowMin, RowMax   float64
	// Screen target.
	Screen Rect
}

// XToScreen converts a time value to a screen x coordinate.
func (t Transform) XToScreen(time float64) float64 {
	span := t.TimeMax - t.TimeMin
	if span <= 0 {
		return t.Screen.X
	}
	return t.Screen.X + (time-t.TimeMin)/span*t.Screen.W
}

// YToScreen converts a row value to a screen y coordinate.
func (t Transform) YToScreen(row float64) float64 {
	span := t.RowMax - t.RowMin
	if span <= 0 {
		return t.Screen.Y
	}
	return t.Screen.Y + (row-t.RowMin)/span*t.Screen.H
}

// XToWorld converts a screen x coordinate back to a time value.
func (t Transform) XToWorld(x float64) float64 {
	if t.Screen.W <= 0 {
		return t.TimeMin
	}
	return t.TimeMin + (x-t.Screen.X)/t.Screen.W*(t.TimeMax-t.TimeMin)
}

// YToWorld converts a screen y coordinate back to a row value.
func (t Transform) YToWorld(y float64) float64 {
	if t.Screen.H <= 0 {
		return t.RowMin
	}
	return t.RowMin + (y-t.Screen.Y)/t.Screen.H*(t.RowMax-t.RowMin)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
