package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := Rect{10, 20, 30, 40}
	cases := []struct {
		x, y float64
		want bool
	}{
		{10, 20, true}, {40, 60, true}, {25, 40, true},
		{9.9, 20, false}, {41, 60, false}, {25, 60.5, false},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.x, tc.y); got != tc.want {
			t.Errorf("Contains(%g,%g) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestRectIntersectInset(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	x := a.Intersect(b)
	if x != (Rect{5, 5, 5, 5}) {
		t.Errorf("Intersect = %+v", x)
	}
	if !a.Intersect(Rect{20, 20, 5, 5}).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	if got := a.Inset(2); got != (Rect{2, 2, 6, 6}) {
		t.Errorf("Inset = %+v", got)
	}
	if !a.Inset(6).Empty() {
		t.Error("over-inset should be empty")
	}
}

func TestTransformForward(t *testing.T) {
	tr := Transform{
		TimeMin: 0, TimeMax: 100,
		RowMin: 0, RowMax: 10,
		Screen: Rect{50, 20, 200, 100},
	}
	if got := tr.XToScreen(0); got != 50 {
		t.Errorf("XToScreen(0) = %g", got)
	}
	if got := tr.XToScreen(100); got != 250 {
		t.Errorf("XToScreen(100) = %g", got)
	}
	if got := tr.XToScreen(50); got != 150 {
		t.Errorf("XToScreen(50) = %g", got)
	}
	if got := tr.YToScreen(5); got != 70 {
		t.Errorf("YToScreen(5) = %g", got)
	}
}

func TestTransformDegenerate(t *testing.T) {
	tr := Transform{TimeMin: 5, TimeMax: 5, RowMin: 0, RowMax: 0, Screen: Rect{10, 10, 100, 100}}
	if tr.XToScreen(5) != 10 || tr.YToScreen(0) != 10 {
		t.Error("degenerate forward transform should pin to origin")
	}
	tr2 := Transform{TimeMin: 0, TimeMax: 10, RowMin: 0, RowMax: 4, Screen: Rect{0, 0, 0, 0}}
	if tr2.XToWorld(123) != 0 || tr2.YToWorld(55) != 0 {
		t.Error("degenerate inverse transform should pin to world origin")
	}
}

// Property: XToWorld inverts XToScreen (and same for Y) within tolerance.
func TestTransformRoundTrip(t *testing.T) {
	f := func(time, row float64) bool {
		time = math.Mod(math.Abs(time), 1000)
		row = math.Mod(math.Abs(row), 64)
		tr := Transform{
			TimeMin: -10, TimeMax: 1010,
			RowMin: 0, RowMax: 64,
			Screen: Rect{37, 11, 640, 480},
		}
		bt := tr.XToWorld(tr.XToScreen(time))
		br := tr.YToWorld(tr.YToScreen(row))
		return math.Abs(bt-time) < 1e-6 && math.Abs(br-row) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
