package core

import "math"

// Extent is a closed time interval [Min, Max].
type Extent struct {
	Min, Max float64
}

// Valid reports whether the extent covers at least one instant.
func (e Extent) Valid() bool { return e.Max >= e.Min }

// Span returns Max - Min, or 0 for invalid extents.
func (e Extent) Span() float64 {
	if !e.Valid() {
		return 0
	}
	return e.Max - e.Min
}

// Union returns the smallest extent covering both operands. Invalid extents
// act as identity elements.
func (e Extent) Union(o Extent) Extent {
	if !e.Valid() {
		return o
	}
	if !o.Valid() {
		return e
	}
	return Extent{math.Min(e.Min, o.Min), math.Max(e.Max, o.Max)}
}

// Intersect returns the overlap of both extents; the result may be invalid.
func (e Extent) Intersect(o Extent) Extent {
	return Extent{math.Max(e.Min, o.Min), math.Min(e.Max, o.Max)}
}

// Contains reports whether t lies inside the extent.
func (e Extent) Contains(t float64) bool { return t >= e.Min && t <= e.Max }

// emptyExtent is the identity for Union.
func emptyExtent() Extent { return Extent{Min: math.Inf(1), Max: math.Inf(-1)} }

// Extent returns the global time extent of the schedule: the minimum start
// and maximum finish over all tasks. With no tasks the zero extent {0, 0} is
// returned.
func (s *Schedule) Extent() Extent {
	e := emptyExtent()
	for i := range s.Tasks {
		e = e.Union(Extent{s.Tasks[i].Start, s.Tasks[i].End})
	}
	if !e.Valid() {
		return Extent{}
	}
	return e
}

// ClusterExtent returns the local time extent of one cluster: the minimum
// start and maximum finish over the tasks that use the cluster (paper
// section II-C.3). With no tasks on the cluster the zero extent is returned.
func (s *Schedule) ClusterExtent(cluster int) Extent {
	e := emptyExtent()
	for i := range s.Tasks {
		if s.Tasks[i].UsesCluster(cluster) {
			e = e.Union(Extent{s.Tasks[i].Start, s.Tasks[i].End})
		}
	}
	if !e.Valid() {
		return Extent{}
	}
	return e
}

// ViewMode selects how the time axes of several cluster panels relate,
// reproducing the paper's two view modes.
type ViewMode int

const (
	// ScaledView draws each cluster using its local min/max task times.
	ScaledView ViewMode = iota
	// AlignedView draws every cluster using the global min/max task times,
	// so the panels share one time axis and the overall utilization across
	// all resources is visible.
	AlignedView
)

func (m ViewMode) String() string {
	switch m {
	case ScaledView:
		return "scaled"
	case AlignedView:
		return "aligned"
	default:
		return "viewmode(?)"
	}
}

// ExtentFor returns the extent the given cluster panel must use under the
// view mode.
func (s *Schedule) ExtentFor(cluster int, mode ViewMode) Extent {
	if mode == AlignedView {
		return s.Extent()
	}
	return s.ClusterExtent(cluster)
}
