package core

import "sort"

// Stats aggregates the sanity-check quantities the paper reads off a Jedule
// chart: makespan, resource utilization, and idle time. All host-time values
// count overlapping tasks on the same host only once (a host is either busy
// or idle at any instant).
type Stats struct {
	Extent      Extent  // global [min start, max finish]
	Makespan    float64 // Extent.Span()
	Hosts       int     // platform size
	BusyArea    float64 // total busy host-time
	IdleArea    float64 // Hosts*Makespan - BusyArea
	Utilization float64 // BusyArea / (Hosts*Makespan); 0 when empty
	TaskCount   int
	// TypeArea is the task-time (duration x hosts) per task type; unlike
	// BusyArea this counts overlaps multiply because it is a per-type sum.
	TypeArea map[string]float64
}

// ComputeStats derives Stats for the whole schedule.
func (s *Schedule) ComputeStats() Stats {
	return s.statsOver(s.Extent(), nil)
}

// ClusterStats derives Stats restricted to one cluster, using the cluster's
// local extent (scaled view semantics).
func (s *Schedule) ClusterStats(cluster int) Stats {
	return s.statsOver(s.ClusterExtent(cluster), &cluster)
}

func (s *Schedule) statsOver(ext Extent, only *int) Stats {
	st := Stats{
		Extent:   ext,
		Makespan: ext.Span(),
		TypeArea: map[string]float64{},
	}
	type hostKey struct{ cluster, host int }
	intervals := map[hostKey][]Extent{}
	for _, c := range s.Clusters {
		if only != nil && c.ID != *only {
			continue
		}
		st.Hosts += c.Hosts
	}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		counted := false
		for _, a := range t.Allocations {
			if only != nil && a.Cluster != *only {
				continue
			}
			hosts := a.HostList()
			if t.Type != CompositeType {
				st.TypeArea[t.Type] += t.Duration() * float64(len(hosts))
			}
			for _, h := range hosts {
				k := hostKey{a.Cluster, h}
				intervals[k] = append(intervals[k], Extent{t.Start, t.End})
			}
			counted = true
		}
		if counted {
			st.TaskCount++
		}
	}
	for _, ivs := range intervals {
		st.BusyArea += unionLength(ivs)
	}
	total := float64(st.Hosts) * st.Makespan
	st.IdleArea = total - st.BusyArea
	if total > 0 {
		st.Utilization = st.BusyArea / total
	}
	return st
}

// unionLength returns the total length of the union of the intervals.
func unionLength(ivs []Extent) float64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Min < ivs[j].Min })
	total := 0.0
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.Min <= cur.Max {
			if iv.Max > cur.Max {
				cur.Max = iv.Max
			}
			continue
		}
		total += cur.Span()
		cur = iv
	}
	return total + cur.Span()
}

// UtilizationProfile samples how many hosts are busy at n+1 evenly spaced
// instants across the schedule extent (inclusive of both ends). It is the
// quantity a human reads off an aligned Jedule view ("only 2-4 processors
// actually running"), used by the quicksort and workload case studies.
func (s *Schedule) UtilizationProfile(n int) []int {
	ext := s.Extent()
	if n < 1 || !ext.Valid() || ext.Span() == 0 {
		return nil
	}
	out := make([]int, n+1)
	for i := 0; i <= n; i++ {
		t := ext.Min + ext.Span()*float64(i)/float64(n)
		out[i] = s.BusyHostsAt(t)
	}
	return out
}

// BusyHostsAt returns the number of distinct hosts executing at least one
// task at time t (half-open interval semantics: a task occupies [Start, End)).
func (s *Schedule) BusyHostsAt(t float64) int {
	type hostKey struct{ cluster, host int }
	busy := map[hostKey]bool{}
	for i := range s.Tasks {
		task := &s.Tasks[i]
		if task.Type == CompositeType {
			continue
		}
		if t < task.Start || t >= task.End {
			continue
		}
		for _, a := range task.Allocations {
			for _, h := range a.HostList() {
				busy[hostKey{a.Cluster, h}] = true
			}
		}
	}
	return len(busy)
}

// HostBusyTime returns, for one host of one cluster, the union length of the
// task intervals on it.
func (s *Schedule) HostBusyTime(cluster, host int) float64 {
	var ivs []Extent
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.Type == CompositeType {
			continue
		}
		if a, ok := t.AllocationOn(cluster); ok && a.ContainsHost(host) {
			ivs = append(ivs, Extent{t.Start, t.End})
		}
	}
	return unionLength(ivs)
}
