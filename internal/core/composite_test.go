package core

import (
	"math/rand"
	"strings"
	"testing"
)

// Figure 3 scenario: a computation and a transfer overlap on shared hosts,
// producing an orange composite band.
func TestCompositeBasicOverlap(t *testing.T) {
	s := NewSingleCluster("c", 4)
	s.Add("comp", "computation", 0, 10, 0, 4)
	s.Add("xfer", "transfer", 4, 6, 0, 2)
	comps := s.CompositeTasks()
	if len(comps) != 1 {
		t.Fatalf("got %d composites, want 1: %+v", len(comps), comps)
	}
	c := comps[0]
	if c.Type != CompositeType {
		t.Errorf("type = %q, want %q", c.Type, CompositeType)
	}
	if c.ID != "comp+xfer" {
		t.Errorf("id = %q, want comp+xfer (concatenated member ids)", c.ID)
	}
	if c.Start != 4 || c.End != 6 {
		t.Errorf("interval = [%g,%g], want [4,6]", c.Start, c.End)
	}
	if got := c.Allocations[0].HostList(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("hosts = %v, want [0 1]", got)
	}
	if c.Property("members") != "comp,xfer" {
		t.Errorf("members = %q", c.Property("members"))
	}
}

func TestCompositeNoOverlap(t *testing.T) {
	s := NewSingleCluster("c", 4)
	s.Add("a", "x", 0, 1, 0, 2)
	s.Add("b", "x", 1, 2, 0, 2) // touching endpoints do not overlap
	s.Add("c", "x", 0, 2, 2, 2) // disjoint hosts
	if comps := s.CompositeTasks(); len(comps) != 0 {
		t.Fatalf("got %d composites, want 0: %+v", len(comps), comps)
	}
}

func TestCompositeThreeWay(t *testing.T) {
	s := NewSingleCluster("c", 1)
	s.Add("a", "x", 0, 10, 0, 1)
	s.Add("b", "y", 2, 8, 0, 1)
	s.Add("c", "z", 4, 6, 0, 1)
	comps := s.CompositeTasks()
	// Expected segments on host 0: [2,4) {a,b}, [4,6) {a,b,c}, [6,8) {a,b}.
	if len(comps) != 3 {
		t.Fatalf("got %d composites, want 3: %+v", len(comps), comps)
	}
	var threeWay *Task
	for i := range comps {
		if comps[i].Start == 4 && comps[i].End == 6 {
			threeWay = &comps[i]
		}
	}
	if threeWay == nil {
		t.Fatal("missing [4,6] three-way composite")
	}
	if threeWay.ID != "a+b+c" {
		t.Errorf("three-way id = %q, want a+b+c", threeWay.ID)
	}
	// The two {a,b} segments have the same member set; IDs must still be unique.
	seen := map[string]bool{}
	for _, c := range comps {
		if seen[c.ID] {
			t.Errorf("duplicate composite id %q", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestCompositeMergesHosts(t *testing.T) {
	// Same overlap on hosts 0-3 must yield ONE composite spanning 4 hosts.
	s := NewSingleCluster("c", 8)
	s.Add("a", "x", 0, 10, 0, 4)
	s.Add("b", "y", 5, 10, 0, 4)
	comps := s.CompositeTasks()
	if len(comps) != 1 {
		t.Fatalf("got %d composites, want 1 merged: %+v", len(comps), comps)
	}
	if n := comps[0].Allocations[0].HostCount(); n != 4 {
		t.Errorf("composite spans %d hosts, want 4", n)
	}
}

func TestCompositeAcrossClusters(t *testing.T) {
	s := New(Cluster{ID: 0, Hosts: 2}, Cluster{ID: 1, Hosts: 2})
	s.AddTask(Task{ID: "a", Type: "x", Start: 0, End: 10, Allocations: []Allocation{
		{Cluster: 0, Hosts: []HostRange{{0, 2}}},
		{Cluster: 1, Hosts: []HostRange{{0, 2}}},
	}})
	s.AddTask(Task{ID: "b", Type: "y", Start: 5, End: 8, Allocations: []Allocation{
		{Cluster: 0, Hosts: []HostRange{{0, 1}}},
		{Cluster: 1, Hosts: []HostRange{{0, 1}}},
	}})
	comps := s.CompositeTasks()
	if len(comps) != 1 {
		t.Fatalf("got %d composites, want 1: %+v", len(comps), comps)
	}
	if len(comps[0].Allocations) != 2 {
		t.Fatalf("composite should span both clusters: %+v", comps[0].Allocations)
	}
}

func TestCompositeIgnoresComposites(t *testing.T) {
	s := NewSingleCluster("c", 2)
	s.Add("a", "x", 0, 10, 0, 2)
	s.Add("b", "y", 2, 4, 0, 2)
	first := s.WithComposites()
	if err := first.Validate(); err != nil {
		t.Fatalf("WithComposites invalid: %v", err)
	}
	again := first.CompositeTasks()
	if len(again) != 1 {
		t.Fatalf("idempotency broken: second pass found %d composites, want 1", len(again))
	}
}

func TestCompositeZeroDuration(t *testing.T) {
	s := NewSingleCluster("c", 1)
	s.Add("a", "x", 0, 10, 0, 1)
	s.Add("b", "y", 5, 5, 0, 1)
	if comps := s.CompositeTasks(); len(comps) != 0 {
		t.Fatalf("zero-duration task produced composites: %+v", comps)
	}
}

// coverage maps a schedule's (host,time) overlap region by sampling.
func overlapAt(s *Schedule, cluster, host int, t float64) bool {
	n := 0
	for i := range s.Tasks {
		task := &s.Tasks[i]
		if task.Type == CompositeType || t < task.Start || t >= task.End {
			continue
		}
		if a, ok := task.AllocationOn(cluster); ok && a.ContainsHost(host) {
			n++
		}
	}
	return n >= 2
}

func compositeAt(comps []Task, cluster, host int, t float64) bool {
	for i := range comps {
		if t < comps[i].Start || t >= comps[i].End {
			continue
		}
		if a, ok := comps[i].AllocationOn(cluster); ok && a.ContainsHost(host) {
			return true
		}
	}
	return false
}

// Property: composites cover exactly the region where >=2 tasks share a host,
// and the sweep implementation agrees with the naive reference.
func TestCompositeCoverageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 120; iter++ {
		s := randomSchedule(r)
		comps := s.CompositeTasks()
		naive := s.CompositeTasksNaive()
		ext := s.Extent()
		if !ext.Valid() || ext.Span() == 0 {
			continue
		}
		for probe := 0; probe < 60; probe++ {
			tt := ext.Min + r.Float64()*ext.Span()
			c := s.Clusters[r.Intn(len(s.Clusters))]
			h := r.Intn(c.Hosts)
			want := overlapAt(s, c.ID, h, tt)
			if got := compositeAt(comps, c.ID, h, tt); got != want {
				t.Fatalf("iter %d: sweep composite at (c%d,h%d,t=%g) = %v, want %v",
					iter, c.ID, h, tt, got, want)
			}
			if got := compositeAt(naive, c.ID, h, tt); got != want {
				t.Fatalf("iter %d: naive composite at (c%d,h%d,t=%g) = %v, want %v",
					iter, c.ID, h, tt, got, want)
			}
		}
		// All composite IDs unique and members recorded.
		seen := map[string]bool{}
		for _, cmp := range comps {
			if seen[cmp.ID] {
				t.Fatalf("iter %d: duplicate composite id %q", iter, cmp.ID)
			}
			seen[cmp.ID] = true
			if !strings.Contains(cmp.Property("members"), ",") {
				t.Fatalf("iter %d: composite %q has <2 members: %q", iter, cmp.ID, cmp.Property("members"))
			}
		}
	}
}
