// Package core implements the Jedule schedule model, the primary
// contribution of Hunold, Hoffmann, and Suter, "Jedule: A Tool for
// Visualizing Schedules of Parallel Applications" (PSTI/ICPP 2010).
//
// A Schedule consists of a set of resource groups called clusters and a set
// of tasks. Each task has a start and a finish time, a user-defined type
// (for example "computation", "transfer", or "idle"), and one or more
// allocations. An allocation names a cluster and a set of hosts inside that
// cluster; the host set may be non-contiguous, which is how Jedule renders
// multiprocessor tasks whose resources are scattered. A task may hold
// allocations on several clusters at once (for example a transfer between
// clusters).
//
// The package also implements the two schedule-level operations the paper
// describes: composite-task construction (section II-C.3), which materializes
// the time intervals during which several tasks share a host, and time
// alignment (scaled versus aligned cluster views).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// CompositeType is the task type assigned to automatically constructed
// composite tasks, as defined by the paper: "the type is set to 'composite'".
const CompositeType = "composite"

// HostRange is a contiguous run of hosts [Start, Start+N) inside a cluster.
// Non-contiguous allocations are expressed as several ranges.
type HostRange struct {
	Start int // first host index, 0-based within the cluster
	N     int // number of hosts, must be >= 1
}

// Contains reports whether host h falls inside the range.
func (r HostRange) Contains(h int) bool { return h >= r.Start && h < r.Start+r.N }

// End returns the first host index after the range.
func (r HostRange) End() int { return r.Start + r.N }

func (r HostRange) String() string {
	if r.N == 1 {
		return fmt.Sprintf("%d", r.Start)
	}
	return fmt.Sprintf("%d-%d", r.Start, r.Start+r.N-1)
}

// Allocation binds a task to a set of hosts of one cluster.
type Allocation struct {
	Cluster int         // cluster identifier, must exist in the schedule
	Hosts   []HostRange // host set; empty means "whole cluster" is NOT implied — it is invalid
}

// HostCount returns the number of hosts covered by the allocation.
// Overlapping ranges are counted once.
func (a Allocation) HostCount() int {
	return len(a.HostList())
}

// HostList returns the sorted, de-duplicated list of host indices.
func (a Allocation) HostList() []int {
	seen := map[int]bool{}
	for _, r := range a.Hosts {
		for h := r.Start; h < r.End(); h++ {
			seen[h] = true
		}
	}
	out := make([]int, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// ContainsHost reports whether the allocation covers host h.
func (a Allocation) ContainsHost(h int) bool {
	for _, r := range a.Hosts {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// Contiguous reports whether the host set forms one contiguous run.
func (a Allocation) Contiguous() bool {
	hosts := a.HostList()
	if len(hosts) == 0 {
		return true
	}
	return hosts[len(hosts)-1]-hosts[0]+1 == len(hosts)
}

// RangesFromHosts builds a minimal sorted []HostRange from a host list.
func RangesFromHosts(hosts []int) []HostRange {
	if len(hosts) == 0 {
		return nil
	}
	sorted := append([]int(nil), hosts...)
	sort.Ints(sorted)
	var out []HostRange
	cur := HostRange{Start: sorted[0], N: 1}
	for _, h := range sorted[1:] {
		switch {
		case h == cur.Start+cur.N-1:
			// duplicate host, ignore
		case h == cur.Start+cur.N:
			cur.N++
		default:
			out = append(out, cur)
			cur = HostRange{Start: h, N: 1}
		}
	}
	return append(out, cur)
}

// Task is one scheduled entity: a job, a computation, a message transfer, a
// waiting period — the semantics are carried by Type and are up to the user.
type Task struct {
	ID          string
	Type        string
	Start, End  float64
	Allocations []Allocation
	// Properties carries arbitrary extra key/value pairs from the input
	// file (for example a user name or a node list) that the interactive
	// mode displays when the task is clicked.
	Properties []Property
}

// Property is one key/value pair of task or schedule meta information.
// An ordered slice (rather than a map) keeps file round-trips byte-stable.
type Property struct {
	Name, Value string
}

// Duration returns End - Start.
func (t *Task) Duration() float64 { return t.End - t.Start }

// TotalHosts returns the number of hosts the task occupies across all
// allocations. Hosts of different clusters are always distinct.
func (t *Task) TotalHosts() int {
	n := 0
	for _, a := range t.Allocations {
		n += a.HostCount()
	}
	return n
}

// AllocationOn returns the allocation of the task on the given cluster and
// true, or a zero Allocation and false.
func (t *Task) AllocationOn(cluster int) (Allocation, bool) {
	for _, a := range t.Allocations {
		if a.Cluster == cluster {
			return a, true
		}
	}
	return Allocation{}, false
}

// UsesCluster reports whether any allocation references the cluster.
func (t *Task) UsesCluster(cluster int) bool {
	_, ok := t.AllocationOn(cluster)
	return ok
}

// Property returns the value of the named task property, or "".
func (t *Task) Property(name string) string {
	for _, p := range t.Properties {
		if p.Name == name {
			return p.Value
		}
	}
	return ""
}

// SetProperty sets (or replaces) a task property.
func (t *Task) SetProperty(name, value string) {
	for i := range t.Properties {
		if t.Properties[i].Name == name {
			t.Properties[i].Value = value
			return
		}
	}
	t.Properties = append(t.Properties, Property{name, value})
}

// Cluster is a named group of hosts. Following the paper, the clusters
// partition the platform: host h of cluster c is a different resource from
// host h of cluster c'.
type Cluster struct {
	ID    int
	Name  string
	Hosts int // number of hosts; hosts are indexed 0 .. Hosts-1
}

// DisplayName returns the cluster name, falling back to "cluster<ID>" for
// unnamed clusters. It is the single naming rule shared by the renderer's
// panel headers and the HTTP viewers.
func (c Cluster) DisplayName() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("cluster%d", c.ID)
}

// Schedule is a complete Jedule document: clusters, tasks, and meta data.
type Schedule struct {
	Clusters []Cluster
	Tasks    []Task
	Meta     []Property
}

// New returns an empty schedule with the given clusters.
func New(clusters ...Cluster) *Schedule {
	return &Schedule{Clusters: append([]Cluster(nil), clusters...)}
}

// NewSingleCluster returns a schedule over one cluster of n hosts.
func NewSingleCluster(name string, n int) *Schedule {
	return New(Cluster{ID: 0, Name: name, Hosts: n})
}

// AddTask appends a task.
func (s *Schedule) AddTask(t Task) { s.Tasks = append(s.Tasks, t) }

// Add is a convenience for the common single-cluster contiguous case: it
// appends a task of the given type on hosts [firstHost, firstHost+n) of
// cluster 0.
func (s *Schedule) Add(id, typ string, start, end float64, firstHost, n int) {
	s.AddTask(Task{
		ID: id, Type: typ, Start: start, End: end,
		Allocations: []Allocation{{Cluster: 0, Hosts: []HostRange{{firstHost, n}}}},
	})
}

// Cluster returns the cluster with the given ID and true, or false.
func (s *Schedule) Cluster(id int) (Cluster, bool) {
	for _, c := range s.Clusters {
		if c.ID == id {
			return c, true
		}
	}
	return Cluster{}, false
}

// TotalHosts returns the platform size (sum over clusters).
func (s *Schedule) TotalHosts() int {
	n := 0
	for _, c := range s.Clusters {
		n += c.Hosts
	}
	return n
}

// Task returns a pointer to the task with the given ID, or nil.
func (s *Schedule) Task(id string) *Task {
	for i := range s.Tasks {
		if s.Tasks[i].ID == id {
			return &s.Tasks[i]
		}
	}
	return nil
}

// MetaValue returns the schedule-level meta value for name, or "".
func (s *Schedule) MetaValue(name string) string {
	for _, p := range s.Meta {
		if p.Name == name {
			return p.Value
		}
	}
	return ""
}

// SetMeta sets (or replaces) a schedule-level meta entry.
func (s *Schedule) SetMeta(name, value string) {
	for i := range s.Meta {
		if s.Meta[i].Name == name {
			s.Meta[i].Value = value
			return
		}
	}
	s.Meta = append(s.Meta, Property{name, value})
}

// TaskTypes returns the sorted set of task types present in the schedule.
func (s *Schedule) TaskTypes() []string {
	set := map[string]bool{}
	for i := range s.Tasks {
		set[s.Tasks[i].Type] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TasksOn returns the indices of tasks that have an allocation on cluster id.
func (s *Schedule) TasksOn(cluster int) []int {
	var out []int
	for i := range s.Tasks {
		if s.Tasks[i].UsesCluster(cluster) {
			out = append(out, i)
		}
	}
	return out
}

// SubSchedule returns the self-contained schedule of one cluster (paper
// section II-C.3: "each cluster schedule is a self-contained schedule,
// containing all tasks within this cluster"). Tasks keep only their
// allocation on that cluster.
func (s *Schedule) SubSchedule(cluster int) *Schedule {
	c, ok := s.Cluster(cluster)
	if !ok {
		return &Schedule{}
	}
	sub := New(c)
	sub.Meta = append([]Property(nil), s.Meta...)
	for i := range s.Tasks {
		if a, ok := s.Tasks[i].AllocationOn(cluster); ok {
			t := s.Tasks[i]
			t.Allocations = []Allocation{a}
			sub.Tasks = append(sub.Tasks, t)
		}
	}
	return sub
}

// Filter returns a copy of the schedule containing only the tasks for
// which keep returns true. Clusters and meta data are preserved. Useful to
// compute statistics over one task type (for example busy profiles that
// must ignore explicit "waiting" tasks).
func (s *Schedule) Filter(keep func(*Task) bool) *Schedule {
	out := New(s.Clusters...)
	out.Meta = append([]Property(nil), s.Meta...)
	for i := range s.Tasks {
		if keep(&s.Tasks[i]) {
			out.Tasks = append(out.Tasks, s.Tasks[i])
		}
	}
	return out
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{
		Clusters: append([]Cluster(nil), s.Clusters...),
		Meta:     append([]Property(nil), s.Meta...),
		Tasks:    make([]Task, len(s.Tasks)),
	}
	for i := range s.Tasks {
		t := s.Tasks[i]
		t.Properties = append([]Property(nil), t.Properties...)
		t.Allocations = make([]Allocation, len(s.Tasks[i].Allocations))
		for j, a := range s.Tasks[i].Allocations {
			a.Hosts = append([]HostRange(nil), a.Hosts...)
			t.Allocations[j] = a
		}
		out.Tasks[i] = t
	}
	return out
}

// SortTasks orders tasks by start time, then end time, then ID. Rendering
// and composite construction do not require sorted input; sorting exists for
// stable output files.
func (s *Schedule) SortTasks() {
	sort.SliceStable(s.Tasks, func(i, j int) bool {
		a, b := &s.Tasks[i], &s.Tasks[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.ID < b.ID
	})
}

// Validate checks the structural invariants of the schedule:
//   - at least one cluster is defined (required by the paper's format);
//   - cluster IDs are unique and host counts positive;
//   - task IDs are unique and non-empty;
//   - every task has Start <= End and at least one allocation;
//   - every allocation references an existing cluster, covers at least one
//     host, and stays within the cluster bounds.
func (s *Schedule) Validate() error {
	if len(s.Clusters) == 0 {
		return fmt.Errorf("core: schedule defines no cluster; at least one is required")
	}
	clusterHosts := map[int]int{}
	for _, c := range s.Clusters {
		if _, dup := clusterHosts[c.ID]; dup {
			return fmt.Errorf("core: duplicate cluster id %d", c.ID)
		}
		if c.Hosts <= 0 {
			return fmt.Errorf("core: cluster %d has non-positive host count %d", c.ID, c.Hosts)
		}
		clusterHosts[c.ID] = c.Hosts
	}
	ids := map[string]bool{}
	for i := range s.Tasks {
		t := &s.Tasks[i]
		if t.ID == "" {
			return fmt.Errorf("core: task %d has empty id", i)
		}
		if ids[t.ID] {
			return fmt.Errorf("core: duplicate task id %q", t.ID)
		}
		ids[t.ID] = true
		if t.End < t.Start {
			return fmt.Errorf("core: task %q ends (%g) before it starts (%g)", t.ID, t.End, t.Start)
		}
		if len(t.Allocations) == 0 {
			return fmt.Errorf("core: task %q has no allocation", t.ID)
		}
		for _, a := range t.Allocations {
			hosts, ok := clusterHosts[a.Cluster]
			if !ok {
				return fmt.Errorf("core: task %q references undefined cluster %d", t.ID, a.Cluster)
			}
			if len(a.Hosts) == 0 {
				return fmt.Errorf("core: task %q has an empty allocation on cluster %d", t.ID, a.Cluster)
			}
			for _, r := range a.Hosts {
				if r.N <= 0 {
					return fmt.Errorf("core: task %q has a non-positive host range on cluster %d", t.ID, a.Cluster)
				}
				if r.Start < 0 || r.End() > hosts {
					return fmt.Errorf("core: task %q host range %v exceeds cluster %d size %d",
						t.ID, r, a.Cluster, hosts)
				}
			}
		}
	}
	return nil
}

// String summarizes the schedule for logs.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule{%d clusters, %d hosts, %d tasks", len(s.Clusters), s.TotalHosts(), len(s.Tasks))
	if len(s.Tasks) > 0 {
		ext := s.Extent()
		fmt.Fprintf(&b, ", t=[%g,%g]", ext.Min, ext.Max)
	}
	b.WriteString("}")
	return b.String()
}
