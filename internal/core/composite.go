package core

import (
	"fmt"
	"sort"
	"strings"
)

// CompositeTasks materializes the paper's composite tasks (section II-C.3):
// "For each resource which is shared by several tasks, Jedule creates a
// composite task. The identifier of a composite task is the concatenation of
// the single task IDs and the type is set to 'composite'."
//
// The returned tasks cover exactly the (host, time) regions where at least
// two of the schedule's tasks are simultaneously allocated to the same host.
// Hosts that share the same set of overlapping tasks over the same interval
// are merged into one composite task, so the result is compact. Composite
// tasks carry a "members" property listing the member task IDs.
//
// The input schedule is not modified. Tasks whose type is already
// CompositeType are ignored, so the operation is idempotent. Zero-duration
// tasks never produce composites.
func (s *Schedule) CompositeTasks() []Task {
	type segment struct {
		key        string // canonical member-set key
		start, end float64
		members    []int // task indices
	}
	// Per (cluster, host) interval sets, swept independently, then grouped.
	segsByKey := map[string][]struct {
		cluster, host int
		start, end    float64
		members       []int
	}{}

	for _, c := range s.Clusters {
		// Gather tasks per host of this cluster.
		type iv struct {
			task       int
			start, end float64
		}
		byHost := make([][]iv, c.Hosts)
		for i := range s.Tasks {
			t := &s.Tasks[i]
			if t.Type == CompositeType || t.End <= t.Start {
				continue
			}
			a, ok := t.AllocationOn(c.ID)
			if !ok {
				continue
			}
			for _, h := range a.HostList() {
				if h >= 0 && h < c.Hosts {
					byHost[h] = append(byHost[h], iv{i, t.Start, t.End})
				}
			}
		}
		for h, ivs := range byHost {
			if len(ivs) < 2 {
				continue
			}
			// Sweep the elementary intervals between all boundaries.
			bounds := make([]float64, 0, 2*len(ivs))
			for _, v := range ivs {
				bounds = append(bounds, v.start, v.end)
			}
			sort.Float64s(bounds)
			bounds = dedupFloats(bounds)
			var segs []segment
			for bi := 0; bi+1 < len(bounds); bi++ {
				lo, hi := bounds[bi], bounds[bi+1]
				var members []int
				for _, v := range ivs {
					if v.start <= lo && v.end >= hi {
						members = append(members, v.task)
					}
				}
				if len(members) < 2 {
					continue
				}
				sort.Ints(members)
				key := memberKey(s, members)
				// Merge with previous segment when contiguous and identical.
				if n := len(segs); n > 0 && segs[n-1].key == key && segs[n-1].end == lo {
					segs[n-1].end = hi
					continue
				}
				segs = append(segs, segment{key, lo, hi, members})
			}
			for _, sg := range segs {
				gk := fmt.Sprintf("%s|%.17g|%.17g", sg.key, sg.start, sg.end)
				segsByKey[gk] = append(segsByKey[gk], struct {
					cluster, host int
					start, end    float64
					members       []int
				}{c.ID, h, sg.start, sg.end, sg.members})
			}
		}
	}

	// Deterministic output order: sort group keys.
	keys := make([]string, 0, len(segsByKey))
	for k := range segsByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []Task
	for _, k := range keys {
		group := segsByKey[k]
		first := group[0]
		// Hosts per cluster.
		hostsByCluster := map[int][]int{}
		for _, g := range group {
			hostsByCluster[g.cluster] = append(hostsByCluster[g.cluster], g.host)
		}
		clusters := make([]int, 0, len(hostsByCluster))
		for cid := range hostsByCluster {
			clusters = append(clusters, cid)
		}
		sort.Ints(clusters)
		var allocs []Allocation
		for _, cid := range clusters {
			allocs = append(allocs, Allocation{Cluster: cid, Hosts: RangesFromHosts(hostsByCluster[cid])})
		}
		ids := make([]string, len(first.members))
		for i, m := range first.members {
			ids[i] = s.Tasks[m].ID
		}
		out = append(out, Task{
			ID:          strings.Join(ids, "+"),
			Type:        CompositeType,
			Start:       first.start,
			End:         first.end,
			Allocations: allocs,
			Properties:  []Property{{Name: "members", Value: strings.Join(ids, ",")}},
		})
	}
	// Composite IDs are concatenations and may repeat across disjoint time
	// intervals of the same member set; disambiguate duplicates.
	seen := map[string]int{}
	for i := range out {
		seen[out[i].ID]++
		if n := seen[out[i].ID]; n > 1 {
			out[i].ID = fmt.Sprintf("%s#%d", out[i].ID, n)
		}
	}
	return out
}

// WithComposites returns a copy of the schedule with all composite tasks
// appended, ready for rendering with a composite color entry.
func (s *Schedule) WithComposites() *Schedule {
	out := s.Clone()
	out.Tasks = append(out.Tasks, s.CompositeTasks()...)
	return out
}

// CompositeTasksNaive is a reference implementation of composite
// construction that tests every pair of tasks for overlap on every shared
// host. It produces one composite task per (host, elementary interval)
// without any host merging, so its output is larger but covers the same
// (host, time) region. It exists for differential testing and for the
// ablation benchmark comparing the naive and sweep implementations.
func (s *Schedule) CompositeTasksNaive() []Task {
	var out []Task
	n := 0
	for _, c := range s.Clusters {
		for h := 0; h < c.Hosts; h++ {
			var onHost []int
			for i := range s.Tasks {
				t := &s.Tasks[i]
				if t.Type == CompositeType || t.End <= t.Start {
					continue
				}
				if a, ok := t.AllocationOn(c.ID); ok && a.ContainsHost(h) {
					onHost = append(onHost, i)
				}
			}
			for x := 0; x < len(onHost); x++ {
				for y := x + 1; y < len(onHost); y++ {
					a, b := &s.Tasks[onHost[x]], &s.Tasks[onHost[y]]
					lo, hi := maxf(a.Start, b.Start), minf(a.End, b.End)
					if hi <= lo {
						continue
					}
					n++
					out = append(out, Task{
						ID:    fmt.Sprintf("%s+%s#n%d", a.ID, b.ID, n),
						Type:  CompositeType,
						Start: lo, End: hi,
						Allocations: []Allocation{{Cluster: c.ID, Hosts: []HostRange{{h, 1}}}},
					})
				}
			}
		}
	}
	return out
}

// memberKey builds a canonical key for a sorted member index set.
func memberKey(s *Schedule, members []int) string {
	parts := make([]string, len(members))
	for i, m := range members {
		parts[i] = s.Tasks[m].ID
	}
	return strings.Join(parts, "\x00")
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
