package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestHostRange(t *testing.T) {
	r := HostRange{Start: 3, N: 4}
	if r.End() != 7 {
		t.Fatalf("End() = %d, want 7", r.End())
	}
	for h := 3; h < 7; h++ {
		if !r.Contains(h) {
			t.Errorf("Contains(%d) = false, want true", h)
		}
	}
	for _, h := range []int{2, 7, -1} {
		if r.Contains(h) {
			t.Errorf("Contains(%d) = true, want false", h)
		}
	}
	if got := r.String(); got != "3-6" {
		t.Errorf("String() = %q, want 3-6", got)
	}
	if got := (HostRange{5, 1}).String(); got != "5" {
		t.Errorf("single-host String() = %q, want 5", got)
	}
}

func TestAllocationHostList(t *testing.T) {
	a := Allocation{Cluster: 0, Hosts: []HostRange{{4, 2}, {0, 2}, {5, 2}}}
	got := a.HostList()
	want := []int{0, 1, 4, 5, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HostList() = %v, want %v", got, want)
	}
	if a.HostCount() != 5 {
		t.Errorf("HostCount() = %d, want 5", a.HostCount())
	}
	if a.Contiguous() {
		t.Error("Contiguous() = true for a scattered allocation")
	}
	b := Allocation{Hosts: []HostRange{{0, 2}, {2, 3}}}
	if !b.Contiguous() {
		t.Error("Contiguous() = false for adjoining ranges")
	}
}

func TestRangesFromHosts(t *testing.T) {
	tests := []struct {
		hosts []int
		want  []HostRange
	}{
		{nil, nil},
		{[]int{0}, []HostRange{{0, 1}}},
		{[]int{0, 1, 2}, []HostRange{{0, 3}}},
		{[]int{2, 0, 1}, []HostRange{{0, 3}}},
		{[]int{0, 2, 3, 7}, []HostRange{{0, 1}, {2, 2}, {7, 1}}},
		{[]int{5, 5, 6}, []HostRange{{5, 2}}}, // duplicates collapse
	}
	for _, tc := range tests {
		if got := RangesFromHosts(tc.hosts); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("RangesFromHosts(%v) = %v, want %v", tc.hosts, got, tc.want)
		}
	}
}

// Property: RangesFromHosts round-trips through HostList.
func TestRangesFromHostsRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		hosts := map[int]bool{}
		for _, h := range raw {
			hosts[int(h)] = true
		}
		var list []int
		for h := range hosts {
			list = append(list, h)
		}
		a := Allocation{Hosts: RangesFromHosts(list)}
		back := a.HostList()
		if len(back) != len(hosts) {
			return false
		}
		for _, h := range back {
			if !hosts[h] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTaskAccessors(t *testing.T) {
	task := Task{
		ID: "t", Type: "computation", Start: 1, End: 3.5,
		Allocations: []Allocation{
			{Cluster: 0, Hosts: []HostRange{{0, 4}}},
			{Cluster: 2, Hosts: []HostRange{{1, 1}, {3, 1}}},
		},
	}
	if task.Duration() != 2.5 {
		t.Errorf("Duration() = %g, want 2.5", task.Duration())
	}
	if task.TotalHosts() != 6 {
		t.Errorf("TotalHosts() = %d, want 6", task.TotalHosts())
	}
	if !task.UsesCluster(2) || task.UsesCluster(1) {
		t.Error("UsesCluster wrong")
	}
	if a, ok := task.AllocationOn(2); !ok || a.HostCount() != 2 {
		t.Error("AllocationOn(2) wrong")
	}
	task.SetProperty("node", "n17")
	task.SetProperty("node", "n18")
	if task.Property("node") != "n18" {
		t.Errorf("Property overwrite failed: %q", task.Property("node"))
	}
	if task.Property("missing") != "" {
		t.Error("missing property should be empty")
	}
}

func buildSample() *Schedule {
	s := New(
		Cluster{ID: 0, Name: "c0", Hosts: 8},
		Cluster{ID: 1, Name: "c1", Hosts: 4},
	)
	s.Add("1", "computation", 0, 0.31, 0, 8)
	s.AddTask(Task{
		ID: "2", Type: "transfer", Start: 0.31, End: 0.4,
		Allocations: []Allocation{
			{Cluster: 0, Hosts: []HostRange{{0, 2}}},
			{Cluster: 1, Hosts: []HostRange{{0, 2}}},
		},
	})
	s.AddTask(Task{
		ID: "3", Type: "computation", Start: 0.4, End: 1.0,
		Allocations: []Allocation{{Cluster: 1, Hosts: []HostRange{{0, 4}}}},
	})
	s.SetMeta("algorithm", "demo")
	return s
}

func TestScheduleBasics(t *testing.T) {
	s := buildSample()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.TotalHosts() != 12 {
		t.Errorf("TotalHosts = %d, want 12", s.TotalHosts())
	}
	if c, ok := s.Cluster(1); !ok || c.Hosts != 4 {
		t.Error("Cluster(1) wrong")
	}
	if _, ok := s.Cluster(9); ok {
		t.Error("Cluster(9) should not exist")
	}
	if s.Task("2") == nil || s.Task("x") != nil {
		t.Error("Task lookup wrong")
	}
	if got := s.TaskTypes(); !reflect.DeepEqual(got, []string{"computation", "transfer"}) {
		t.Errorf("TaskTypes = %v", got)
	}
	if got := s.TasksOn(1); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("TasksOn(1) = %v, want [1 2]", got)
	}
	if s.MetaValue("algorithm") != "demo" {
		t.Error("MetaValue wrong")
	}
	s.SetMeta("algorithm", "demo2")
	if s.MetaValue("algorithm") != "demo2" || len(s.Meta) != 1 {
		t.Error("SetMeta overwrite wrong")
	}
}

func TestSubSchedule(t *testing.T) {
	s := buildSample()
	sub := s.SubSchedule(1)
	if len(sub.Clusters) != 1 || sub.Clusters[0].ID != 1 {
		t.Fatalf("sub clusters = %v", sub.Clusters)
	}
	if len(sub.Tasks) != 2 {
		t.Fatalf("sub has %d tasks, want 2 (transfer + computation)", len(sub.Tasks))
	}
	for _, task := range sub.Tasks {
		if len(task.Allocations) != 1 || task.Allocations[0].Cluster != 1 {
			t.Errorf("task %s kept foreign allocations: %v", task.ID, task.Allocations)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("sub Validate: %v", err)
	}
	if empty := s.SubSchedule(42); len(empty.Tasks) != 0 {
		t.Error("SubSchedule(42) should be empty")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := buildSample()
	c := s.Clone()
	c.Tasks[0].ID = "mutated"
	c.Tasks[1].Allocations[0].Hosts[0] = HostRange{7, 1}
	c.Clusters[0].Hosts = 99
	c.SetMeta("algorithm", "other")
	if s.Tasks[0].ID != "1" || s.Tasks[1].Allocations[0].Hosts[0].Start != 0 ||
		s.Clusters[0].Hosts != 8 || s.MetaValue("algorithm") != "demo" {
		t.Fatal("Clone shares state with the original")
	}
}

func TestSortTasks(t *testing.T) {
	s := NewSingleCluster("c", 4)
	s.Add("b", "x", 2, 3, 0, 1)
	s.Add("a", "x", 2, 3, 1, 1)
	s.Add("c", "x", 0, 1, 2, 1)
	s.Add("d", "x", 2, 2.5, 3, 1)
	s.SortTasks()
	var ids []string
	for _, task := range s.Tasks {
		ids = append(ids, task.ID)
	}
	if got := strings.Join(ids, ","); got != "c,d,a,b" {
		t.Fatalf("sorted order = %s, want c,d,a,b", got)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name  string
		mk    func() *Schedule
		wants string
	}{
		{"no cluster", func() *Schedule { return &Schedule{} }, "no cluster"},
		{"dup cluster", func() *Schedule {
			return New(Cluster{ID: 0, Hosts: 1}, Cluster{ID: 0, Hosts: 2})
		}, "duplicate cluster"},
		{"bad hosts", func() *Schedule { return New(Cluster{ID: 0, Hosts: 0}) }, "non-positive host count"},
		{"empty id", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.Add("", "x", 0, 1, 0, 1)
			return s
		}, "empty id"},
		{"dup id", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.Add("t", "x", 0, 1, 0, 1)
			s.Add("t", "x", 1, 2, 0, 1)
			return s
		}, "duplicate task id"},
		{"reversed times", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.Add("t", "x", 2, 1, 0, 1)
			return s
		}, "ends"},
		{"no allocation", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.AddTask(Task{ID: "t", Start: 0, End: 1})
			return s
		}, "no allocation"},
		{"unknown cluster", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.AddTask(Task{ID: "t", Start: 0, End: 1,
				Allocations: []Allocation{{Cluster: 7, Hosts: []HostRange{{0, 1}}}}})
			return s
		}, "undefined cluster"},
		{"empty allocation", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.AddTask(Task{ID: "t", Start: 0, End: 1, Allocations: []Allocation{{Cluster: 0}}})
			return s
		}, "empty allocation"},
		{"range too big", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.Add("t", "x", 0, 1, 1, 5)
			return s
		}, "exceeds cluster"},
		{"negative range", func() *Schedule {
			s := NewSingleCluster("c", 2)
			s.AddTask(Task{ID: "t", Start: 0, End: 1,
				Allocations: []Allocation{{Cluster: 0, Hosts: []HostRange{{0, -1}}}}})
			return s
		}, "non-positive host range"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mk().Validate()
			if err == nil {
				t.Fatal("Validate returned nil, want error")
			}
			if !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("error %q does not contain %q", err, tc.wants)
			}
		})
	}
}

func TestValidateOK(t *testing.T) {
	if err := buildSample().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	s := buildSample()
	got := s.String()
	for _, want := range []string{"2 clusters", "12 hosts", "3 tasks", "t=[0,1]"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
}

// randomSchedule builds an arbitrary valid schedule for property tests.
func randomSchedule(r *rand.Rand) *Schedule {
	nc := 1 + r.Intn(3)
	s := &Schedule{}
	for c := 0; c < nc; c++ {
		s.Clusters = append(s.Clusters, Cluster{ID: c, Name: "c", Hosts: 1 + r.Intn(16)})
	}
	nt := r.Intn(24)
	for i := 0; i < nt; i++ {
		start := float64(r.Intn(100)) / 10
		dur := float64(1+r.Intn(50)) / 10
		c := r.Intn(nc)
		hosts := s.Clusters[c].Hosts
		first := r.Intn(hosts)
		n := 1 + r.Intn(hosts-first)
		task := Task{
			ID: string(rune('A'+i%26)) + string(rune('0'+i/26)), Type: []string{"computation", "transfer", "io"}[r.Intn(3)],
			Start: start, End: start + dur,
			Allocations: []Allocation{{Cluster: c, Hosts: []HostRange{{first, n}}}},
		}
		s.Tasks = append(s.Tasks, task)
	}
	return s
}

// Property: a random schedule validates and its sub-schedules validate.
func TestRandomScheduleInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := randomSchedule(r)
		if err := s.Validate(); err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, s)
		}
		for _, c := range s.Clusters {
			if err := s.SubSchedule(c.ID).Validate(); err != nil {
				t.Fatalf("iteration %d sub %d: %v", i, c.ID, err)
			}
		}
	}
}
