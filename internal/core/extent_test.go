package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtentOps(t *testing.T) {
	a := Extent{0, 10}
	b := Extent{5, 20}
	if u := a.Union(b); u != (Extent{0, 20}) {
		t.Errorf("Union = %v", u)
	}
	if x := a.Intersect(b); x != (Extent{5, 10}) {
		t.Errorf("Intersect = %v", x)
	}
	if x := a.Intersect(Extent{15, 20}); x.Valid() {
		t.Errorf("disjoint Intersect should be invalid, got %v", x)
	}
	if a.Span() != 10 {
		t.Errorf("Span = %g", a.Span())
	}
	if (Extent{3, 1}).Span() != 0 {
		t.Error("invalid extent must have zero span")
	}
	if !a.Contains(0) || !a.Contains(10) || a.Contains(-0.01) {
		t.Error("Contains wrong")
	}
	// Invalid extents are identities for Union.
	inv := emptyExtent()
	if got := inv.Union(a); got != a {
		t.Errorf("invalid.Union(a) = %v, want %v", got, a)
	}
	if got := a.Union(inv); got != a {
		t.Errorf("a.Union(invalid) = %v, want %v", got, a)
	}
}

func TestScheduleExtents(t *testing.T) {
	s := buildSample()
	if got := s.Extent(); got != (Extent{0, 1}) {
		t.Errorf("Extent = %v, want {0 1}", got)
	}
	if got := s.ClusterExtent(0); got != (Extent{0, 0.4}) {
		t.Errorf("ClusterExtent(0) = %v, want {0 0.4}", got)
	}
	if got := s.ClusterExtent(1); got != (Extent{0.31, 1}) {
		t.Errorf("ClusterExtent(1) = %v, want {0.31 1}", got)
	}
	if got := s.ClusterExtent(99); got != (Extent{}) {
		t.Errorf("ClusterExtent(99) = %v, want zero", got)
	}
	if got := (&Schedule{}).Extent(); got != (Extent{}) {
		t.Errorf("empty Extent = %v, want zero", got)
	}
}

func TestViewModes(t *testing.T) {
	s := buildSample()
	if got := s.ExtentFor(0, ScaledView); got != (Extent{0, 0.4}) {
		t.Errorf("scaled extent = %v", got)
	}
	if got := s.ExtentFor(0, AlignedView); got != (Extent{0, 1}) {
		t.Errorf("aligned extent = %v", got)
	}
	if ScaledView.String() != "scaled" || AlignedView.String() != "aligned" {
		t.Error("ViewMode.String wrong")
	}
	if ViewMode(9).String() != "viewmode(?)" {
		t.Error("unknown ViewMode.String wrong")
	}
}

// Properties of the alignment semantics from the paper: the aligned extent
// contains every cluster's scaled extent, and equals their union.
func TestAlignmentEnvelopeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		s := randomSchedule(r)
		global := s.Extent()
		union := emptyExtent()
		for _, c := range s.Clusters {
			local := s.ClusterExtent(c.ID)
			if len(s.TasksOn(c.ID)) == 0 {
				continue
			}
			union = union.Union(local)
			if local.Min < global.Min || local.Max > global.Max {
				t.Fatalf("iter %d: cluster %d extent %v escapes global %v", i, c.ID, local, global)
			}
		}
		if len(s.Tasks) > 0 && union.Valid() && union != global {
			t.Fatalf("iter %d: union of cluster extents %v != global %v", i, union, global)
		}
	}
}

func TestExtentUnionCommutative(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		a := Extent{math.Min(a0, a1), math.Max(a0, a1)}
		b := Extent{math.Min(b0, b1), math.Max(b0, b1)}
		return a.Union(b) == b.Union(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
