package core

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStatsSimple(t *testing.T) {
	s := NewSingleCluster("c", 4)
	s.Add("a", "computation", 0, 10, 0, 2) // 20 host-seconds
	s.Add("b", "computation", 0, 5, 2, 2)  // 10 host-seconds
	st := s.ComputeStats()
	if st.Makespan != 10 {
		t.Errorf("Makespan = %g, want 10", st.Makespan)
	}
	if !almost(st.BusyArea, 30) {
		t.Errorf("BusyArea = %g, want 30", st.BusyArea)
	}
	if !almost(st.IdleArea, 10) {
		t.Errorf("IdleArea = %g, want 10", st.IdleArea)
	}
	if !almost(st.Utilization, 0.75) {
		t.Errorf("Utilization = %g, want 0.75", st.Utilization)
	}
	if st.TaskCount != 2 {
		t.Errorf("TaskCount = %d", st.TaskCount)
	}
	if !almost(st.TypeArea["computation"], 30) {
		t.Errorf("TypeArea = %v", st.TypeArea)
	}
}

func TestStatsOverlapCountedOnce(t *testing.T) {
	// Two tasks fully overlapping on the same host: busy area is 10, not 20.
	s := NewSingleCluster("c", 1)
	s.Add("a", "x", 0, 10, 0, 1)
	s.Add("b", "y", 0, 10, 0, 1)
	st := s.ComputeStats()
	if !almost(st.BusyArea, 10) {
		t.Fatalf("BusyArea = %g, want 10 (overlap once)", st.BusyArea)
	}
	if !almost(st.Utilization, 1.0) {
		t.Fatalf("Utilization = %g, want 1", st.Utilization)
	}
	// TypeArea counts each type separately.
	if !almost(st.TypeArea["x"], 10) || !almost(st.TypeArea["y"], 10) {
		t.Fatalf("TypeArea = %v", st.TypeArea)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := NewSingleCluster("c", 4)
	st := s.ComputeStats()
	if st.Utilization != 0 || st.BusyArea != 0 || st.Makespan != 0 {
		t.Fatalf("empty stats wrong: %+v", st)
	}
}

func TestClusterStats(t *testing.T) {
	s := buildSample()
	st0 := s.ClusterStats(0)
	if st0.Hosts != 8 {
		t.Errorf("cluster 0 hosts = %d", st0.Hosts)
	}
	// Cluster 0: task 1 (8 hosts x 0.31) + transfer (2 hosts x 0.09).
	if !almost(st0.BusyArea, 8*0.31+2*0.09) {
		t.Errorf("cluster 0 busy = %g", st0.BusyArea)
	}
	if !almost(st0.Makespan, 0.4) {
		t.Errorf("cluster 0 makespan = %g (scaled extent)", st0.Makespan)
	}
	st1 := s.ClusterStats(1)
	if st1.TaskCount != 2 {
		t.Errorf("cluster 1 task count = %d", st1.TaskCount)
	}
}

func TestUtilizationProfile(t *testing.T) {
	s := NewSingleCluster("c", 4)
	s.Add("a", "x", 0, 4, 0, 1)
	s.Add("b", "x", 2, 4, 1, 3)
	prof := s.UtilizationProfile(4) // samples at t = 0,1,2,3,4
	want := []int{1, 1, 4, 4, 0}    // half-open intervals: nothing runs at t=4
	if len(prof) != len(want) {
		t.Fatalf("profile length = %d", len(prof))
	}
	for i := range want {
		if prof[i] != want[i] {
			t.Errorf("prof[%d] = %d, want %d", i, prof[i], want[i])
		}
	}
	if got := s.UtilizationProfile(0); got != nil {
		t.Error("n<1 must return nil")
	}
	if got := (&Schedule{}).UtilizationProfile(4); got != nil {
		t.Error("empty schedule must return nil")
	}
}

func TestBusyHostsAtIgnoresComposites(t *testing.T) {
	s := NewSingleCluster("c", 2)
	s.Add("a", "x", 0, 10, 0, 2)
	s.Add("b", "y", 2, 4, 0, 2)
	sc := s.WithComposites()
	if got := sc.BusyHostsAt(3); got != 2 {
		t.Fatalf("BusyHostsAt(3) = %d, want 2 (composites must not double-count)", got)
	}
}

func TestHostBusyTime(t *testing.T) {
	s := NewSingleCluster("c", 2)
	s.Add("a", "x", 0, 4, 0, 1)
	s.Add("b", "x", 2, 6, 0, 1) // overlaps a on host 0
	s.Add("c", "x", 8, 9, 0, 1)
	if got := s.HostBusyTime(0, 0); !almost(got, 7) {
		t.Fatalf("HostBusyTime = %g, want 7 (union [0,6] + [8,9])", got)
	}
	if got := s.HostBusyTime(0, 1); got != 0 {
		t.Fatalf("idle host busy = %g", got)
	}
}

// Property: 0 <= Utilization <= 1, IdleArea + BusyArea == Hosts * Makespan.
func TestStatsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		s := randomSchedule(r)
		st := s.ComputeStats()
		if st.Utilization < 0 || st.Utilization > 1+1e-9 {
			t.Fatalf("iter %d: utilization %g out of range", i, st.Utilization)
		}
		if !almost(st.BusyArea+st.IdleArea, float64(st.Hosts)*st.Makespan) {
			t.Fatalf("iter %d: busy %g + idle %g != hosts*makespan %g",
				i, st.BusyArea, st.IdleArea, float64(st.Hosts)*st.Makespan)
		}
		// BusyArea is bounded by the per-type areas summed.
		var typeSum float64
		for _, v := range st.TypeArea {
			typeSum += v
		}
		if st.BusyArea > typeSum+1e-9 {
			t.Fatalf("iter %d: busy %g exceeds type sum %g", i, st.BusyArea, typeSum)
		}
	}
}
