package sim

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
)

// Recorder collects task execution intervals during a simulation and turns
// them into a Jedule schedule. Host numbers are platform-global; the
// recorder maps them back to (cluster, host-index) pairs so that Jedule's
// multi-cluster view shows the platform structure.
type Recorder struct {
	plat  *platform.Platform
	sched *core.Schedule
}

// NewRecorder creates a recorder whose schedule mirrors the platform's
// cluster structure.
func NewRecorder(p *platform.Platform) *Recorder {
	s := &core.Schedule{}
	for _, c := range p.Clusters {
		s.Clusters = append(s.Clusters, core.Cluster{ID: c.ID, Name: c.Name, Hosts: len(c.Hosts)})
	}
	return &Recorder{plat: p, sched: s}
}

// Record adds one executed task covering the given global hosts.
func (r *Recorder) Record(id, typ string, start, end float64, globalHosts []int, props ...core.Property) error {
	if end < start {
		return fmt.Errorf("sim: task %q recorded with end < start", id)
	}
	byCluster := map[int][]int{}
	for _, g := range globalHosts {
		h, err := r.plat.Host(g)
		if err != nil {
			return fmt.Errorf("sim: task %q: %w", id, err)
		}
		byCluster[h.Cluster] = append(byCluster[h.Cluster], h.Index)
	}
	clusters := make([]int, 0, len(byCluster))
	for c := range byCluster {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	var allocs []core.Allocation
	for _, c := range clusters {
		allocs = append(allocs, core.Allocation{Cluster: c, Hosts: core.RangesFromHosts(byCluster[c])})
	}
	r.sched.AddTask(core.Task{
		ID: id, Type: typ, Start: start, End: end,
		Allocations: allocs, Properties: props,
	})
	return nil
}

// SetMeta forwards schedule-level meta information.
func (r *Recorder) SetMeta(name, value string) { r.sched.SetMeta(name, value) }

// Schedule returns the accumulated schedule, sorted by start time.
func (r *Recorder) Schedule() *core.Schedule {
	r.sched.SortTasks()
	return r.sched
}
