package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
)

// Dep is a data dependency of a planned task on an earlier one.
type Dep struct {
	From  string  // predecessor task ID
	Bytes float64 // data to transfer once the predecessor completes
}

// PlannedTask is a scheduler's placement decision, ready for virtual
// execution: the task runs on the given global hosts for Duration seconds
// once all dependencies have delivered their data and the hosts are free.
type PlannedTask struct {
	ID       string
	Type     string
	Hosts    []int // platform-global host numbers, all held for the duration
	Duration float64
	Deps     []Dep
}

// WorkflowResult summarizes a virtual execution.
type WorkflowResult struct {
	Schedule *core.Schedule
	Makespan float64
	// Start and Finish give the simulated times per task ID.
	Start, Finish map[string]float64
}

// ExecOptions tunes the virtual execution.
type ExecOptions struct {
	// RecordTransfers adds a "transfer" task to the trace for every
	// inter-host data movement, spanning the source and target hosts (the
	// paper's inter-cluster communication rectangles).
	RecordTransfers bool
	// TransferFloor suppresses recording of transfers shorter than this
	// (avoids sub-pixel clutter); transfers still take their time.
	TransferFloor float64
}

// Execute runs the planned tasks on the platform through the event kernel:
// a task starts when every dependency's data has arrived at its first host
// and all its hosts are free. Dependencies transfer from the predecessor's
// first host to the successor's first host under the platform's
// latency+bandwidth model. Host occupation is FIFO in event order, which is
// deterministic.
//
// The returned trace contains one "computation"-typed task per planned task
// (the planned Type is kept) and optionally the transfers.
func Execute(p *platform.Platform, tasks []PlannedTask, opt ExecOptions) (*WorkflowResult, error) {
	byID := make(map[string]*PlannedTask, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		if t.ID == "" {
			return nil, fmt.Errorf("sim: task %d has empty id", i)
		}
		if _, dup := byID[t.ID]; dup {
			return nil, fmt.Errorf("sim: duplicate task id %q", t.ID)
		}
		if len(t.Hosts) == 0 {
			return nil, fmt.Errorf("sim: task %q has no hosts", t.ID)
		}
		for _, h := range t.Hosts {
			if _, err := p.Host(h); err != nil {
				return nil, fmt.Errorf("sim: task %q: %w", t.ID, err)
			}
		}
		if t.Duration < 0 {
			return nil, fmt.Errorf("sim: task %q has negative duration", t.ID)
		}
		byID[t.ID] = t
	}
	for i := range tasks {
		for _, d := range tasks[i].Deps {
			if _, ok := byID[d.From]; !ok {
				return nil, fmt.Errorf("sim: task %q depends on unknown %q", tasks[i].ID, d.From)
			}
		}
	}

	eng := NewEngine()
	rec := NewRecorder(p)
	hostFree := make([]float64, p.NumHosts())
	pending := make(map[string]int, len(tasks))   // unarrived dep count
	ready := make(map[string]float64, len(tasks)) // max data-arrival time
	finish := make(map[string]float64, len(tasks))
	start := make(map[string]float64, len(tasks))
	succs := map[string][]*PlannedTask{}
	var execErr error

	for i := range tasks {
		t := &tasks[i]
		pending[t.ID] = len(t.Deps)
		for _, d := range t.Deps {
			succs[d.From] = append(succs[d.From], t)
		}
	}

	nTransfers := 0
	var tryStart func(t *PlannedTask)
	tryStart = func(t *PlannedTask) {
		st := ready[t.ID]
		if eng.Now() > st {
			st = eng.Now()
		}
		for _, h := range t.Hosts {
			if hostFree[h] > st {
				st = hostFree[h]
			}
		}
		for _, h := range t.Hosts {
			hostFree[h] = st + t.Duration
		}
		start[t.ID] = st
		eng.At(st+t.Duration, func() {
			finish[t.ID] = eng.Now()
			if err := rec.Record(t.ID, t.Type, st, eng.Now(), t.Hosts); err != nil && execErr == nil {
				execErr = err
			}
			// Launch transfers to successors.
			for _, s := range succs[t.ID] {
				s := s
				var bytes float64
				for _, d := range s.Deps {
					if d.From == t.ID {
						bytes = d.Bytes
					}
				}
				src := t.Hosts[0]
				dst := s.Hosts[0]
				ct, err := p.CommTime(src, dst, bytes)
				if err != nil && execErr == nil {
					execErr = err
					ct = 0
				}
				arrive := eng.Now() + ct
				if opt.RecordTransfers && src != dst && ct >= opt.TransferFloor {
					nTransfers++
					if err := rec.Record(
						fmt.Sprintf("x%d:%s->%s", nTransfers, t.ID, s.ID),
						"transfer", eng.Now(), arrive, []int{src, dst}); err != nil && execErr == nil {
						execErr = err
					}
				}
				eng.At(arrive, func() {
					if arrive > ready[s.ID] {
						ready[s.ID] = arrive
					}
					pending[s.ID]--
					if pending[s.ID] == 0 {
						tryStart(s)
					}
				})
			}
		})
	}

	for i := range tasks {
		t := &tasks[i]
		if pending[t.ID] == 0 {
			tryStart(t)
		}
	}
	makespan := eng.Run()
	if execErr != nil {
		return nil, execErr
	}
	if len(finish) != len(tasks) {
		return nil, fmt.Errorf("sim: deadlock: only %d of %d tasks completed (dependency cycle?)",
			len(finish), len(tasks))
	}
	return &WorkflowResult{
		Schedule: rec.Schedule(), Makespan: makespan,
		Start: start, Finish: finish,
	}, nil
}
