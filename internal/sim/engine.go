// Package sim is the discrete-event simulation kernel standing in for
// SimGrid, which the paper's case studies use to execute schedules
// virtually and log task start/finish times. The kernel provides an event
// queue with deterministic ordering, simulated hosts with FIFO occupancy,
// and a trace recorder producing core.Schedule documents ready for Jedule.
package sim

import "container/heap"

// event is one scheduled callback.
type event struct {
	time float64
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator clock and event queue.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	count  int // events executed
}

// NewEngine creates an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.count }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// indicates a simulation bug rather than a recoverable condition.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn after a delay relative to now.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run processes events until the queue is empty and returns the final time.
func (e *Engine) Run() float64 {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.time
		e.count++
		ev.fn()
	}
	return e.now
}

// Step executes the single next event; it returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.time
	e.count++
	ev.fn()
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
