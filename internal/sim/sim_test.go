package sim

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var log []float64
	e.At(3, func() { log = append(log, 3) })
	e.At(1, func() { log = append(log, 1) })
	e.At(2, func() { log = append(log, 2) })
	if got := e.Run(); got != 3 {
		t.Fatalf("final time = %g", got)
	}
	if !sort.Float64sAreSorted(log) || len(log) != 3 {
		t.Fatalf("order = %v", log)
	}
	if e.Processed() != 3 {
		t.Fatalf("processed = %d", e.Processed())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var log []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { log = append(log, i) })
	}
	e.Run()
	for i, v := range log {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", log)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []float64
	e.At(1, func() {
		hits = append(hits, e.Now())
		e.After(2, func() { hits = append(hits, e.Now()) })
		e.After(-5, func() { hits = append(hits, e.Now()) }) // negative clamps to now
	})
	e.Run()
	if len(hits) != 3 || hits[0] != 1 || hits[1] != 1 || hits[2] != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	if !e.Step() || e.Now() != 1 || e.Pending() != 1 {
		t.Fatal("step 1 wrong")
	}
	if !e.Step() || e.Now() != 2 {
		t.Fatal("step 2 wrong")
	}
	if e.Step() {
		t.Fatal("empty queue should return false")
	}
}

func TestRecorder(t *testing.T) {
	p := platform.Figure7(platform.Figure7FlawedLatency)
	r := NewRecorder(p)
	// Global hosts 0 (cluster 0) and 2,3 (cluster 1).
	if err := r.Record("t", "computation", 1, 2, []int{0, 2, 3}); err != nil {
		t.Fatal(err)
	}
	r.SetMeta("algorithm", "x")
	s := r.Schedule()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters) != 4 {
		t.Fatal("recorder lost platform clusters")
	}
	task := s.Task("t")
	if len(task.Allocations) != 2 {
		t.Fatalf("allocations = %+v", task.Allocations)
	}
	if task.Allocations[0].Cluster != 0 || task.Allocations[1].Cluster != 1 {
		t.Fatal("cluster mapping wrong")
	}
	if got := task.Allocations[1].HostList(); got[0] != 0 || got[1] != 1 {
		t.Fatalf("cluster-local indices = %v, want [0 1]", got)
	}
	if s.MetaValue("algorithm") != "x" {
		t.Fatal("meta lost")
	}
	// Errors.
	if err := r.Record("bad", "x", 2, 1, []int{0}); err == nil {
		t.Error("end<start accepted")
	}
	if err := r.Record("bad2", "x", 0, 1, []int{99}); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestExecuteChain(t *testing.T) {
	p := platform.Homogeneous(4, 1e9)
	tasks := []PlannedTask{
		{ID: "a", Type: "computation", Hosts: []int{0}, Duration: 10},
		{ID: "b", Type: "computation", Hosts: []int{0}, Duration: 5, Deps: []Dep{{From: "a", Bytes: 0}}},
		{ID: "c", Type: "computation", Hosts: []int{1}, Duration: 5, Deps: []Dep{{From: "b", Bytes: 1.25e9}}},
	}
	res, err := Execute(p, tasks, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Start["a"] != 0 || res.Finish["a"] != 10 {
		t.Fatalf("a = [%g,%g]", res.Start["a"], res.Finish["a"])
	}
	// b on the same host: no transfer time (same host => 0 comm).
	if res.Start["b"] != 10 {
		t.Fatalf("b start = %g", res.Start["b"])
	}
	// c on host 1: transfer 1.25 GB over ~1.25GB/s + 1e-4 latency ~ 1s.
	wantC := 15 + 2*5e-5 + 1.0
	if math.Abs(res.Start["c"]-wantC) > 1e-6 {
		t.Fatalf("c start = %g, want %g", res.Start["c"], wantC)
	}
	if math.Abs(res.Makespan-(wantC+5)) > 1e-6 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteHostContention(t *testing.T) {
	p := platform.Homogeneous(2, 1e9)
	tasks := []PlannedTask{
		{ID: "a", Type: "computation", Hosts: []int{0, 1}, Duration: 4},
		{ID: "b", Type: "computation", Hosts: []int{0}, Duration: 3},
		{ID: "c", Type: "computation", Hosts: []int{1}, Duration: 2},
	}
	res, err := Execute(p, tasks, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// a reserves both hosts first (insertion order); b and c queue behind.
	if res.Start["a"] != 0 {
		t.Fatal("a should start first")
	}
	if res.Start["b"] != 4 || res.Start["c"] != 4 {
		t.Fatalf("b,c starts = %g,%g, want 4,4", res.Start["b"], res.Start["c"])
	}
}

// noOverlap verifies no two recorded tasks share a host at the same time.
func noOverlap(t *testing.T, res *WorkflowResult) {
	t.Helper()
	s := res.Schedule
	type iv struct{ lo, hi float64 }
	used := map[[2]int][]iv{}
	for i := range s.Tasks {
		task := &s.Tasks[i]
		if task.Type == "transfer" {
			continue // transfers model links, not host occupancy
		}
		for _, a := range task.Allocations {
			for _, h := range a.HostList() {
				key := [2]int{a.Cluster, h}
				for _, prev := range used[key] {
					if task.Start < prev.hi && prev.lo < task.End {
						t.Fatalf("host %v double-booked: [%g,%g] vs [%g,%g]",
							key, prev.lo, prev.hi, task.Start, task.End)
					}
				}
				used[key] = append(used[key], iv{task.Start, task.End})
			}
		}
	}
}

// Property: random workflows respect precedence and never double-book hosts.
func TestExecuteRandomWorkflowsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := platform.Figure7(platform.Figure7RealisticLatency)
	for iter := 0; iter < 40; iter++ {
		n := 5 + rng.Intn(30)
		tasks := make([]PlannedTask, n)
		for i := range tasks {
			h1 := rng.Intn(p.NumHosts())
			hosts := []int{h1}
			if rng.Intn(3) == 0 {
				h2 := rng.Intn(p.NumHosts())
				if h2 != h1 {
					hosts = append(hosts, h2)
				}
			}
			tasks[i] = PlannedTask{
				ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Type: "computation",
				Hosts: hosts, Duration: rng.Float64() * 10,
			}
			// Edges only to earlier tasks: acyclic by construction.
			for j := 0; j < i; j++ {
				if rng.Float64() < 0.15 {
					tasks[i].Deps = append(tasks[i].Deps,
						Dep{From: tasks[j].ID, Bytes: rng.Float64() * 1e8})
				}
			}
		}
		res, err := Execute(p, tasks, ExecOptions{RecordTransfers: iter%2 == 0})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		noOverlap(t, res)
		// Precedence: every task starts at or after each dep's finish.
		for _, task := range tasks {
			for _, d := range task.Deps {
				if res.Start[task.ID] < res.Finish[d.From]-1e-9 {
					t.Fatalf("iter %d: %s starts before dep %s finishes", iter, task.ID, d.From)
				}
			}
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestExecuteTransfersRecorded(t *testing.T) {
	p := platform.Figure7(platform.Figure7RealisticLatency)
	tasks := []PlannedTask{
		{ID: "a", Type: "computation", Hosts: []int{0}, Duration: 1},
		{ID: "b", Type: "computation", Hosts: []int{2}, Duration: 1, Deps: []Dep{{From: "a", Bytes: 1e7}}},
	}
	res, err := Execute(p, tasks, ExecOptions{RecordTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for i := range res.Schedule.Tasks {
		task := &res.Schedule.Tasks[i]
		if task.Type != "transfer" {
			continue
		}
		found = true
		if len(task.Allocations) != 2 {
			t.Fatal("transfer should span source and target clusters")
		}
		if !strings.Contains(task.ID, "a->b") {
			t.Fatalf("transfer id = %q", task.ID)
		}
	}
	if !found {
		t.Fatal("no transfer recorded")
	}
	// With a floor higher than the transfer time, it is suppressed.
	res2, err := Execute(p, tasks, ExecOptions{RecordTransfers: true, TransferFloor: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res2.Schedule.Tasks {
		if res2.Schedule.Tasks[i].Type == "transfer" {
			t.Fatal("floored transfer still recorded")
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	p := platform.Homogeneous(2, 1e9)
	cases := []struct {
		name  string
		tasks []PlannedTask
		wants string
	}{
		{"empty id", []PlannedTask{{ID: "", Hosts: []int{0}}}, "empty id"},
		{"dup id", []PlannedTask{
			{ID: "a", Hosts: []int{0}}, {ID: "a", Hosts: []int{1}},
		}, "duplicate"},
		{"no hosts", []PlannedTask{{ID: "a"}}, "no hosts"},
		{"bad host", []PlannedTask{{ID: "a", Hosts: []int{7}}}, "out of range"},
		{"negative duration", []PlannedTask{{ID: "a", Hosts: []int{0}, Duration: -1}}, "negative duration"},
		{"unknown dep", []PlannedTask{{ID: "a", Hosts: []int{0}, Deps: []Dep{{From: "zz"}}}}, "unknown"},
		{"cycle", []PlannedTask{
			{ID: "a", Hosts: []int{0}, Deps: []Dep{{From: "b"}}},
			{ID: "b", Hosts: []int{1}, Deps: []Dep{{From: "a"}}},
		}, "deadlock"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Execute(p, tc.tasks, ExecOptions{})
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("err = %v, want %q", err, tc.wants)
			}
		})
	}
}
