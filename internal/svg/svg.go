// Package svg writes SVG 1.1 documents through the same canvas interface as
// the raster and pdf backends, giving the command-line mode a third vector
// output format beyond those the paper lists.
package svg

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"image/color"
	"io"
	"os"
)

// Canvas accumulates SVG elements.
type Canvas struct {
	w, h float64
	body bytes.Buffer
}

// New creates an SVG canvas of the given pixel size with a white background.
func New(width, height float64) *Canvas {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	c := &Canvas{w: width, h: height}
	c.FillRect(0, 0, width, height, color.RGBA{255, 255, 255, 255})
	return c
}

// Size returns the canvas dimensions.
func (c *Canvas) Size() (w, h float64) { return c.w, c.h }

// Fragment returns an empty canvas of the same size (no background
// rectangle). One goroutine can record elements into each fragment
// concurrently; Append then merges them in a deterministic order, yielding
// the same bytes as recording everything serially.
func (c *Canvas) Fragment() *Canvas { return &Canvas{w: c.w, h: c.h} }

// Append merges a fragment's elements after the receiver's own.
func (c *Canvas) Append(f *Canvas) { c.body.Write(f.body.Bytes()) }

func hexColor(col color.RGBA) string {
	return fmt.Sprintf("#%02x%02x%02x", col.R, col.G, col.B)
}

// FillRect fills an axis-aligned rectangle.
func (c *Canvas) FillRect(x, y, w, h float64, col color.RGBA) {
	if w <= 0 || h <= 0 {
		return
	}
	fmt.Fprintf(&c.body, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
		x, y, w, h, hexColor(col))
}

// StrokeRect outlines an axis-aligned rectangle.
func (c *Canvas) StrokeRect(x, y, w, h float64, col color.RGBA, lw float64) {
	if w <= 0 || h <= 0 || lw <= 0 {
		return
	}
	fmt.Fprintf(&c.body, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x, y, w, h, hexColor(col), lw)
}

// Line draws a straight segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, col color.RGBA, lw float64) {
	if lw <= 0 {
		lw = 1
	}
	fmt.Fprintf(&c.body, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, hexColor(col), lw)
}

// TextWidth estimates text width with the same average-width model as the
// pdf backend, keeping layout decisions backend-independent.
func (c *Canvas) TextWidth(s string, size float64) float64 {
	n := 0
	for range s {
		n++
	}
	return float64(n) * size * 0.52
}

// TextHeight returns the nominal glyph height.
func (c *Canvas) TextHeight(size float64) float64 { return size }

// Text draws s with its top-left corner at (x, y).
func (c *Canvas) Text(x, y float64, s string, size float64, col color.RGBA) {
	if s == "" {
		return
	}
	var esc bytes.Buffer
	xml.EscapeText(&esc, []byte(s))
	fmt.Fprintf(&c.body,
		`<text x="%.2f" y="%.2f" font-family="Helvetica,sans-serif" font-size="%.2f" fill="%s">%s</text>`+"\n",
		x, y+0.8*size, size, hexColor(col), esc.String())
}

// VerticalText draws s rotated 90 degrees counter-clockwise, (x, y) being
// the top-left of the rotated block.
func (c *Canvas) VerticalText(x, y float64, s string, size float64, col color.RGBA) {
	if s == "" {
		return
	}
	var esc bytes.Buffer
	xml.EscapeText(&esc, []byte(s))
	bx, by := x+0.8*size, y+c.TextWidth(s, size)
	fmt.Fprintf(&c.body,
		`<text x="%.2f" y="%.2f" transform="rotate(-90 %.2f %.2f)" font-family="Helvetica,sans-serif" font-size="%.2f" fill="%s">%s</text>`+"\n",
		bx, by, bx, by, size, hexColor(col), esc.String())
}

// Encode writes the complete SVG document.
func (c *Canvas) Encode(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		`<?xml version="1.0" encoding="UTF-8"?>`+"\n"+
			`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		c.w, c.h, c.w, c.h); err != nil {
		return err
	}
	if _, err := w.Write(c.body.Bytes()); err != nil {
		return err
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

// WriteFile encodes the document to a file.
func (c *Canvas) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
