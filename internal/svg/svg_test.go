package svg

import (
	"bytes"
	"encoding/xml"
	"image/color"
	"strings"
	"testing"
)

var black = color.RGBA{0, 0, 0, 255}

func encode(t *testing.T, c *Canvas) string {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDocumentWellFormedXML(t *testing.T) {
	c := New(300, 200)
	c.FillRect(1, 2, 3, 4, color.RGBA{1, 2, 3, 255})
	c.StrokeRect(1, 2, 3, 4, black, 1)
	c.Line(0, 0, 10, 10, black, 1)
	c.Text(5, 5, "hello <&> world", 10, black)
	c.VerticalText(5, 5, "up", 10, black)
	doc := encode(t, c)
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, doc)
		}
	}
	if !strings.Contains(doc, `width="300" height="200"`) {
		t.Error("dimensions missing")
	}
}

func TestShapes(t *testing.T) {
	c := New(100, 100)
	c.FillRect(10, 20, 30, 40, color.RGBA{255, 98, 0, 255})
	c.StrokeRect(1, 1, 5, 5, black, 2)
	c.Line(0, 0, 9, 9, black, 1.5)
	doc := encode(t, c)
	for _, want := range []string{
		`<rect x="10.00" y="20.00" width="30.00" height="40.00" fill="#ff6200"/>`,
		`stroke-width="2.00"`,
		`<line x1="0.00" y1="0.00" x2="9.00" y2="9.00"`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("missing %q in:\n%s", want, doc)
		}
	}
}

func TestTextEscaped(t *testing.T) {
	c := New(100, 100)
	c.Text(0, 0, "a<b>&c", 10, black)
	doc := encode(t, c)
	if !strings.Contains(doc, "a&lt;b&gt;&amp;c") {
		t.Fatalf("text not escaped:\n%s", doc)
	}
}

func TestVerticalTextRotation(t *testing.T) {
	c := New(100, 100)
	c.VerticalText(10, 10, "up", 10, black)
	if !strings.Contains(encode(t, c), `transform="rotate(-90`) {
		t.Fatal("rotation missing")
	}
}

func TestDegenerateNoops(t *testing.T) {
	c := New(50, 50)
	before := c.body.Len()
	c.FillRect(0, 0, -1, 5, black)
	c.StrokeRect(0, 0, 5, 5, black, 0)
	c.Text(0, 0, "", 10, black)
	c.VerticalText(0, 0, "", 10, black)
	if c.body.Len() != before {
		t.Fatal("degenerate ops emitted elements")
	}
}

func TestMetricsAndSize(t *testing.T) {
	c := New(0, -3)
	if w, h := c.Size(); w != 1 || h != 1 {
		t.Fatalf("clamped size = %g x %g", w, h)
	}
	if w := c.TextWidth("abc", 10); w < 15.5 || w > 15.7 {
		t.Errorf("TextWidth = %g", w)
	}
	if c.TextHeight(11) != 11 {
		t.Error("TextHeight")
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	c := New(10, 10)
	if err := c.WriteFile(dir + "/x.svg"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/nonexistent-dir-xyz/x.svg"); err == nil {
		t.Error("unwritable path must error")
	}
}
