package pdf

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"os"
)

// Document is a multi-page PDF. The paper's authors "used the PDF export
// function of Jedule to create documents with hundreds of schedule
// pictures"; Document supports that workflow: add one page canvas per
// schedule and encode a single file.
type Document struct {
	pages []*Canvas
}

// NewDocument creates an empty document.
func NewDocument() *Document { return &Document{} }

// AddPage appends a page of the given size in points and returns its
// drawing canvas.
func (d *Document) AddPage(width, height float64) *Canvas {
	c := New(width, height)
	d.pages = append(d.pages, c)
	return c
}

// PageCount returns the number of pages added so far.
func (d *Document) PageCount() int { return len(d.pages) }

// Encode writes the complete PDF document.
//
// Object layout: 1 = catalog, 2 = page tree, 3..2+2n = alternating page and
// content objects, 3+2n = the shared Helvetica font.
func (d *Document) Encode(w io.Writer) error {
	if len(d.pages) == 0 {
		return fmt.Errorf("pdf: document has no pages")
	}
	n := len(d.pages)
	fontObj := 3 + 2*n

	var out bytes.Buffer
	var offsets []int
	obj := func(id int, body string) {
		offsets = append(offsets, out.Len())
		fmt.Fprintf(&out, "%d 0 obj\n%s\nendobj\n", id, body)
	}

	out.WriteString("%PDF-1.4\n%\xe2\xe3\xcf\xd3\n")
	obj(1, "<< /Type /Catalog /Pages 2 0 R >>")
	kids := ""
	for i := 0; i < n; i++ {
		kids += fmt.Sprintf("%d 0 R ", 3+2*i)
	}
	obj(2, fmt.Sprintf("<< /Type /Pages /Kids [%s] /Count %d >>", kids, n))
	for i, page := range d.pages {
		pageObj := 3 + 2*i
		contentObj := pageObj + 1
		obj(pageObj, fmt.Sprintf(
			"<< /Type /Page /Parent 2 0 R /MediaBox [0 0 %.2f %.2f] /Contents %d 0 R /Resources << /Font << /F1 %d 0 R >> >> >>",
			page.w, page.h, contentObj, fontObj))
		var compressed bytes.Buffer
		zw := zlib.NewWriter(&compressed)
		if _, err := zw.Write(page.content.Bytes()); err != nil {
			return fmt.Errorf("pdf: compress page %d: %w", i, err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("pdf: compress page %d: %w", i, err)
		}
		offsets = append(offsets, out.Len())
		fmt.Fprintf(&out, "%d 0 obj\n<< /Length %d /Filter /FlateDecode >>\nstream\n",
			contentObj, compressed.Len())
		out.Write(compressed.Bytes())
		out.WriteString("\nendstream\nendobj\n")
	}
	obj(fontObj, "<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica /Encoding /WinAnsiEncoding >>")

	xref := out.Len()
	fmt.Fprintf(&out, "xref\n0 %d\n0000000000 65535 f \n", len(offsets)+1)
	for _, off := range offsets {
		fmt.Fprintf(&out, "%010d 00000 n \n", off)
	}
	fmt.Fprintf(&out, "trailer\n<< /Size %d /Root 1 0 R >>\nstartxref\n%d\n%%%%EOF\n",
		len(offsets)+1, xref)
	_, err := w.Write(out.Bytes())
	return err
}

// WriteFile encodes the document to a file.
func (d *Document) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
