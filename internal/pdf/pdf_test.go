package pdf

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"image/color"
	"io"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var black = color.RGBA{0, 0, 0, 255}

// decodeContent extracts and inflates the page content stream of a document
// produced by Encode.
func decodeContent(t *testing.T, doc []byte) string {
	t.Helper()
	i := bytes.Index(doc, []byte("stream\n"))
	j := bytes.Index(doc, []byte("\nendstream"))
	if i < 0 || j < 0 {
		t.Fatal("no content stream found")
	}
	zr, err := zlib.NewReader(bytes.NewReader(doc[i+len("stream\n") : j]))
	if err != nil {
		t.Fatalf("zlib: %v", err)
	}
	defer zr.Close()
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("inflate: %v", err)
	}
	return string(raw)
}

func encode(t *testing.T, c *Canvas) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDocumentSkeleton(t *testing.T) {
	c := New(400, 300)
	doc := encode(t, c)
	for _, want := range []string{
		"%PDF-1.4", "/Type /Catalog", "/Type /Pages", "/Type /Page",
		"/MediaBox [0 0 400.00 300.00]", "/BaseFont /Helvetica",
		"xref", "trailer", "startxref", "%%EOF",
	} {
		if !bytes.Contains(doc, []byte(want)) {
			t.Errorf("document missing %q", want)
		}
	}
}

func TestXrefOffsetsValid(t *testing.T) {
	c := New(200, 100)
	c.FillRect(10, 10, 50, 20, black)
	doc := encode(t, c)
	// Every xref entry must point at "N 0 obj".
	m := regexp.MustCompile(`(?m)^(\d{10}) 00000 n `).FindAllSubmatch(doc, -1)
	if len(m) != 5 {
		t.Fatalf("expected 5 in-use xref entries, got %d", len(m))
	}
	for i, e := range m {
		off, _ := strconv.Atoi(string(e[1]))
		want := fmt.Sprintf("%d 0 obj", i+1)
		if !bytes.HasPrefix(doc[off:], []byte(want)) {
			t.Errorf("xref entry %d points at %q, want %q", i+1, doc[off:off+10], want)
		}
	}
	// startxref must point at the xref keyword.
	sx := regexp.MustCompile(`startxref\n(\d+)`).FindSubmatch(doc)
	if sx == nil {
		t.Fatal("no startxref")
	}
	off, _ := strconv.Atoi(string(sx[1]))
	if !bytes.HasPrefix(doc[off:], []byte("xref")) {
		t.Error("startxref does not point at xref table")
	}
}

func TestFillRectFlipsY(t *testing.T) {
	c := New(100, 200)
	c.FillRect(10, 20, 30, 40, color.RGBA{255, 0, 0, 255})
	content := decodeContent(t, encode(t, c))
	// Renderer y=20 with h=40 on a 200-high page => PDF y = 200-20-40 = 140.
	if !strings.Contains(content, "10.00 140.00 30.00 40.00 re f") {
		t.Fatalf("rect not flipped correctly:\n%s", content)
	}
	if !strings.Contains(content, "1.000 0.000 0.000 rg") {
		t.Error("fill color missing")
	}
}

func TestStrokeAndLine(t *testing.T) {
	c := New(100, 100)
	c.StrokeRect(5, 5, 20, 10, black, 2)
	c.Line(0, 0, 50, 50, black, 1.5)
	content := decodeContent(t, encode(t, c))
	if !strings.Contains(content, "re S") {
		t.Error("stroke rect missing")
	}
	if !strings.Contains(content, "0.00 100.00 m 50.00 50.00 l S") {
		t.Errorf("line missing or not flipped:\n%s", content)
	}
	if !strings.Contains(content, "2.00 w") || !strings.Contains(content, "1.50 w") {
		t.Error("line widths missing")
	}
}

func TestDegenerateOpsAreNoops(t *testing.T) {
	c := New(100, 100)
	before := c.content.Len()
	c.FillRect(0, 0, 0, 10, black)
	c.FillRect(0, 0, 10, -1, black)
	c.StrokeRect(0, 0, 10, 10, black, 0)
	c.Text(0, 0, "", 10, black)
	c.VerticalText(0, 0, "", 10, black)
	if c.content.Len() != before {
		t.Fatal("degenerate operations emitted content")
	}
}

func TestTextEscaping(t *testing.T) {
	c := New(100, 100)
	c.Text(5, 5, `a(b)c\d`, 10, black)
	content := decodeContent(t, encode(t, c))
	if !strings.Contains(content, `(a\(b\)c\\d) Tj`) {
		t.Fatalf("escaping wrong:\n%s", content)
	}
	c2 := New(100, 100)
	c2.Text(5, 5, "non-ascii: é", 10, black)
	if !strings.Contains(decodeContent(t, encode(t, c2)), "non-ascii: ?") {
		t.Error("non-ascii should degrade to ?")
	}
}

func TestVerticalTextMatrix(t *testing.T) {
	c := New(100, 100)
	c.VerticalText(10, 10, "UP", 10, black)
	content := decodeContent(t, encode(t, c))
	if !strings.Contains(content, "0 1 -1 0") {
		t.Fatalf("rotation matrix missing:\n%s", content)
	}
}

func TestTextMetrics(t *testing.T) {
	c := New(10, 10)
	if got := c.TextWidth("abcd", 10); got != 4*10*helveticaWidth {
		t.Errorf("TextWidth = %g", got)
	}
	if c.TextHeight(12) != 12 {
		t.Error("TextHeight")
	}
	if c.TextWidth("", 10) != 0 {
		t.Error("empty width")
	}
}

func TestSizeClamped(t *testing.T) {
	c := New(-5, 0)
	w, h := c.Size()
	if w != 1 || h != 1 {
		t.Fatalf("size = %g x %g", w, h)
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	c := New(50, 50)
	if err := c.WriteFile(dir + "/out.pdf"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/nonexistent-dir-xyz/out.pdf"); err == nil {
		t.Error("unwritable path must error")
	}
}
