package pdf

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"testing"
)

func TestDocumentMultiPage(t *testing.T) {
	d := NewDocument()
	for i := 0; i < 3; i++ {
		c := d.AddPage(200, 100)
		c.FillRect(float64(i*10), 5, 20, 20, black)
		c.Text(5, 50, "page", 10, black)
	}
	if d.PageCount() != 3 {
		t.Fatalf("pages = %d", d.PageCount())
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	if got := bytes.Count(doc, []byte("/Type /Page ")); got != 3 {
		t.Fatalf("page objects = %d, want 3", got)
	}
	if !bytes.Contains(doc, []byte("/Count 3")) {
		t.Fatal("page tree count wrong")
	}
	if got := bytes.Count(doc, []byte("/Filter /FlateDecode")); got != 3 {
		t.Fatalf("content streams = %d, want 3", got)
	}
	// Exactly one shared font object.
	if got := bytes.Count(doc, []byte("/BaseFont /Helvetica")); got != 1 {
		t.Fatalf("font objects = %d, want 1", got)
	}
}

func TestDocumentXrefValid(t *testing.T) {
	d := NewDocument()
	d.AddPage(100, 100).FillRect(0, 0, 10, 10, black)
	d.AddPage(100, 100).Line(0, 0, 50, 50, black, 1)
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	entries := regexp.MustCompile(`(?m)^(\d{10}) 00000 n `).FindAllSubmatch(doc, -1)
	// 1 catalog + 1 pages + 2x(page+content) + font = 7 objects.
	if len(entries) != 7 {
		t.Fatalf("xref entries = %d, want 7", len(entries))
	}
	for i, e := range entries {
		off, _ := strconv.Atoi(string(e[1]))
		want := fmt.Sprintf("%d 0 obj", i+1)
		if !bytes.HasPrefix(doc[off:], []byte(want)) {
			t.Fatalf("xref %d points at %q, want %q", i+1, doc[off:off+12], want)
		}
	}
}

func TestDocumentEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDocument().Encode(&buf); err == nil {
		t.Fatal("empty document accepted")
	}
}

func TestDocumentWriteFile(t *testing.T) {
	dir := t.TempDir()
	d := NewDocument()
	d.AddPage(50, 50)
	if err := d.WriteFile(dir + "/book.pdf"); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("/nonexistent-dir-xyz/book.pdf"); err == nil {
		t.Fatal("unwritable path accepted")
	}
	if err := NewDocument().WriteFile(dir + "/empty.pdf"); err == nil {
		t.Fatal("empty document write accepted")
	}
}
