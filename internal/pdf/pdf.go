// Package pdf is a minimal from-scratch PDF 1.4 writer providing the vector
// export of the Jedule command-line mode ("high quality graphics of
// schedules ... to be included in articles or reports"). It supports exactly
// what the Gantt renderer needs: filled and stroked rectangles, straight
// lines, and horizontal or vertical text in the built-in Helvetica font,
// with flate-compressed content streams.
//
// Coordinates follow the renderer convention (origin at the top-left, y
// growing downward); the writer flips them into PDF space.
package pdf

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"image/color"
	"io"
	"os"
)

// Canvas accumulates drawing operations for a single-page document.
type Canvas struct {
	w, h    float64 // page size in points
	content bytes.Buffer
}

// New creates a page canvas of the given size in points.
func New(width, height float64) *Canvas {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	c := &Canvas{w: width, h: height}
	// White background, matching the raster canvas.
	c.FillRect(0, 0, width, height, color.RGBA{255, 255, 255, 255})
	return c
}

// Size returns the page dimensions.
func (c *Canvas) Size() (w, h float64) { return c.w, c.h }

// Fragment returns an empty canvas of the same page size (no background
// fill). One goroutine can record content operations into each fragment
// concurrently; Append then merges them in a deterministic order, yielding
// the same content stream as recording everything serially.
func (c *Canvas) Fragment() *Canvas { return &Canvas{w: c.w, h: c.h} }

// Append merges a fragment's content operations after the receiver's own.
func (c *Canvas) Append(f *Canvas) { c.content.Write(f.content.Bytes()) }

func rgb(col color.RGBA) (r, g, b float64) {
	return float64(col.R) / 255, float64(col.G) / 255, float64(col.B) / 255
}

// FillRect fills an axis-aligned rectangle.
func (c *Canvas) FillRect(x, y, w, h float64, col color.RGBA) {
	if w <= 0 || h <= 0 {
		return
	}
	r, g, b := rgb(col)
	fmt.Fprintf(&c.content, "%.3f %.3f %.3f rg %.2f %.2f %.2f %.2f re f\n",
		r, g, b, x, c.h-y-h, w, h)
}

// StrokeRect outlines an axis-aligned rectangle.
func (c *Canvas) StrokeRect(x, y, w, h float64, col color.RGBA, lw float64) {
	if w <= 0 || h <= 0 || lw <= 0 {
		return
	}
	r, g, b := rgb(col)
	fmt.Fprintf(&c.content, "%.3f %.3f %.3f RG %.2f w %.2f %.2f %.2f %.2f re S\n",
		r, g, b, lw, x, c.h-y-h, w, h)
}

// Line draws a straight segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, col color.RGBA, lw float64) {
	if lw <= 0 {
		lw = 1
	}
	r, g, b := rgb(col)
	fmt.Fprintf(&c.content, "%.3f %.3f %.3f RG %.2f w %.2f %.2f m %.2f %.2f l S\n",
		r, g, b, lw, x1, c.h-y1, x2, c.h-y2)
}

// helveticaWidth approximates the advance width of Helvetica text in
// multiples of the font size. A constant average (0.52 em) keeps the layout
// engine backend-independent; labels are elided by width before drawing.
const helveticaWidth = 0.52

// TextWidth estimates the width of s at the given size.
func (c *Canvas) TextWidth(s string, size float64) float64 {
	n := 0
	for range s {
		n++
	}
	return float64(n) * size * helveticaWidth
}

// TextHeight returns the nominal glyph height.
func (c *Canvas) TextHeight(size float64) float64 { return size }

// Text draws s with its top-left corner at (x, y).
func (c *Canvas) Text(x, y float64, s string, size float64, col color.RGBA) {
	if s == "" {
		return
	}
	r, g, b := rgb(col)
	// Baseline sits about 0.8 em below the top of the glyph box.
	fmt.Fprintf(&c.content, "BT /F1 %.2f Tf %.3f %.3f %.3f rg %.2f %.2f Td (%s) Tj ET\n",
		size, r, g, b, x, c.h-y-0.8*size, escape(s))
}

// VerticalText draws s rotated 90 degrees counter-clockwise with (x, y) the
// top-left of the rotated block.
func (c *Canvas) VerticalText(x, y float64, s string, size float64, col color.RGBA) {
	if s == "" {
		return
	}
	r, g, b := rgb(col)
	// Rotation matrix (0 1 -1 0) rotates CCW; translate to the block's
	// bottom-left in PDF space.
	fmt.Fprintf(&c.content,
		"BT /F1 %.2f Tf %.3f %.3f %.3f rg 0 1 -1 0 %.2f %.2f Tm (%s) Tj ET\n",
		size, r, g, b, x+0.8*size, c.h-y-c.TextWidth(s, size), escape(s))
}

// escape protects the PDF string delimiters.
func escape(s string) string {
	var b bytes.Buffer
	for _, r := range s {
		switch r {
		case '(', ')', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		default:
			if r < 32 || r > 126 {
				b.WriteByte('?')
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// Encode writes the complete single-page PDF document.
func (c *Canvas) Encode(w io.Writer) error {
	var compressed bytes.Buffer
	zw := zlib.NewWriter(&compressed)
	if _, err := zw.Write(c.content.Bytes()); err != nil {
		return fmt.Errorf("pdf: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("pdf: compress: %w", err)
	}

	var out bytes.Buffer
	offsets := make([]int, 0, 6)
	obj := func(body string) {
		offsets = append(offsets, out.Len())
		fmt.Fprintf(&out, "%d 0 obj\n%s\nendobj\n", len(offsets), body)
	}

	out.WriteString("%PDF-1.4\n%\xe2\xe3\xcf\xd3\n")
	obj("<< /Type /Catalog /Pages 2 0 R >>")
	obj("<< /Type /Pages /Kids [3 0 R] /Count 1 >>")
	obj(fmt.Sprintf("<< /Type /Page /Parent 2 0 R /MediaBox [0 0 %.2f %.2f] /Contents 4 0 R /Resources << /Font << /F1 5 0 R >> >> >>",
		c.w, c.h))
	offsets = append(offsets, out.Len())
	fmt.Fprintf(&out, "4 0 obj\n<< /Length %d /Filter /FlateDecode >>\nstream\n", compressed.Len())
	out.Write(compressed.Bytes())
	out.WriteString("\nendstream\nendobj\n")
	obj("<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica /Encoding /WinAnsiEncoding >>")

	xref := out.Len()
	fmt.Fprintf(&out, "xref\n0 %d\n0000000000 65535 f \n", len(offsets)+1)
	for _, off := range offsets {
		fmt.Fprintf(&out, "%010d 00000 n \n", off)
	}
	fmt.Fprintf(&out, "trailer\n<< /Size %d /Root 1 0 R >>\nstartxref\n%d\n%%%%EOF\n",
		len(offsets)+1, xref)

	_, err := w.Write(out.Bytes())
	return err
}

// WriteFile encodes the document to a file.
func (c *Canvas) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
