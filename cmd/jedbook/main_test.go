package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jedxml"
)

func writeSchedules(t *testing.T, dir string, n int) []string {
	t.Helper()
	var paths []string
	for i := 0; i < n; i++ {
		s := core.NewSingleCluster("c", 4)
		s.Add("a", "computation", 0, float64(5+i), 0, 4)
		path := dir + "/s" + string(rune('0'+i)) + ".jed"
		if err := jedxml.WriteFile(path, s); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

func TestRunBuildsBook(t *testing.T) {
	dir := t.TempDir()
	paths := writeSchedules(t, dir, 3)
	out := dir + "/book.pdf"
	var buf bytes.Buffer
	args := append([]string{"-out", out, "-gray", "-composites"}, paths...)
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 pages") {
		t.Fatalf("output: %s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("%PDF")) {
		t.Fatal("not a PDF")
	}
	if got := bytes.Count(data, []byte("/Type /Page ")); got != 3 {
		t.Fatalf("pages = %d", got)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("no inputs accepted")
	}
	if err := run([]string{"/nonexistent.jed"}, &buf); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	paths := writeSchedules(t, dir, 1)
	if err := run(append([]string{"-out", "/nonexistent-dir-xyz/b.pdf"}, paths...), &buf); err == nil {
		t.Error("unwritable output accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
