// Command jedbook renders many Jedule schedule files into one multi-page
// PDF — the paper's batch workflow: "We have used the PDF export function
// of Jedule to create documents with hundreds of schedule pictures."
//
// Usage:
//
//	jedbook -out book.pdf run1.jed run2.jed ...
//
// Each input file becomes one page titled with its file name.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/colormap"
	"repro/internal/jedxml"
	"repro/internal/pdf"
	"repro/internal/render"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jedbook:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("jedbook", flag.ContinueOnError)
	var (
		out    = fs.String("out", "book.pdf", "output PDF file")
		width  = fs.Int("width", 1000, "page width in points")
		height = fs.Int("height", 600, "page height in points")
		gray   = fs.Bool("gray", false, "grayscale color map")
		comps  = fs.Bool("composites", false, "overlay composite tasks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("at least one schedule file required")
	}
	cmap := colormap.Default()
	if *gray {
		cmap = cmap.Grayscale()
	}
	doc := pdf.NewDocument()
	for _, path := range fs.Args() {
		s, err := jedxml.ReadFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		page := doc.AddPage(float64(*width), float64(*height))
		render.Render(page, s, render.Options{
			Map: cmap, Labels: true, Composites: *comps,
			Title: filepath.Base(path), ShowMeta: true, Legend: true,
		})
		fmt.Fprintf(w, "added %s (%d tasks)\n", path, len(s.Tasks))
	}
	if err := doc.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d pages)\n", *out, doc.PageCount())
	return nil
}
