// Command campaign reruns the paper's case-study-III experiment campaign:
// thousands of scheduler comparisons over DAG shapes, DAG sizes, and
// cluster sizes, printed as a per-cell table plus the corner cases worth
// opening in the viewer — the workflow that surfaced Figure 4.
//
// Usage:
//
//	campaign [-algos cpa,mcpa] [-replicates 8] [-threshold 1.2] [-export dir]
//	         [-shard k/n] [-out results.jsonl] [-resume]
//	campaign -merge a.jsonl,b.jsonl
//
// Any registered scheduler may join the comparison (campaign -list prints
// the names). With -export, the worst corner case of each qualifying cell
// is rerun and written as one Jedule XML file per algorithm, ready for
// jeduleview or jedbook.
//
// -shard k/n runs only the k-th of n partitions of the cell enumeration, so
// several processes (or CI jobs) can split the factorial; -out streams every
// completed cell as a JSONL checkpoint record, -resume skips the cells
// already persisted in -out, and -merge combines shard or checkpoint files
// into the full campaign summary — byte-identical to a single-process run
// of the same seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cliutil"
	"repro/internal/dag"
	"repro/internal/jedxml"
	"repro/internal/platform"
	"repro/internal/sched"
	_ "repro/internal/sched/all"
	"repro/internal/sim"
)

func main() {
	var (
		algos      = flag.String("algos", "cpa,mcpa", "comma-separated scheduler names to compare")
		list       = flag.Bool("list", false, "print the registered scheduler names and exit")
		replicates = flag.Int("replicates", 8, "runs per factorial cell")
		seed       = flag.Int64("seed", 1, "campaign seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		threshold  = flag.Float64("threshold", 1.2, "corner-case spread threshold")
		export     = flag.String("export", "", "directory for corner-case schedule exports")
		shardFlag  = flag.String("shard", "", "run only partition k/n of the cell enumeration (e.g. 1/2)")
		out        = flag.String("out", "", "stream completed cells to this JSONL checkpoint file")
		resume     = flag.Bool("resume", false, "skip the cells already persisted in -out and append")
		merge      = flag.String("merge", "", "merge comma-separated JSONL checkpoint files and print the summary (no cells are run)")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(sched.List(), "\n"))
		return
	}
	if *merge != "" {
		res, cells, err := mergeFiles(cliutil.SplitList(*merge))
		if err != nil {
			fail(err)
		}
		if err := res.Complete(cells); err != nil {
			fail(fmt.Errorf("merge incomplete: %w", err))
		}
		printSummary(res, *threshold)
		return
	}

	cfg := campaign.DefaultConfig()
	cfg.Algos = cliutil.SplitList(*algos)
	cfg.Replicates = *replicates
	cfg.Seed = *seed
	cfg.Workers = *workers
	shard, err := campaign.ParseShard(*shardFlag)
	if err != nil {
		fail(err)
	}

	res, err := runCheckpointed(cfg, campaign.RunOptions{Shard: shard}, *out, *resume)
	if err != nil {
		fail(err)
	}
	printSummary(res, *threshold)
	if !shard.IsZero() {
		fmt.Printf("(shard %s of the factorial; merge the full set with -merge)\n", shard)
	}

	corners := res.CornerCases(*threshold)
	if *export == "" || len(corners) == 0 {
		return
	}
	if err := os.MkdirAll(*export, 0o755); err != nil {
		fail(err)
	}
	for _, c := range corners {
		if err := exportCell(cfg, c, *export); err != nil {
			fail(err)
		}
	}
}

// runCheckpointed executes the campaign, streaming cells to the JSONL file
// when -out is set and folding in the cells of an existing checkpoint when
// -resume is set. The returned result covers the checkpointed cells plus
// everything run now.
func runCheckpointed(cfg campaign.Config, opt campaign.RunOptions, out string, resume bool) (*campaign.Result, error) {
	if out == "" {
		if resume {
			return nil, fmt.Errorf("-resume requires -out")
		}
		return campaign.RunContext(context.Background(), cfg, opt)
	}

	var prior *campaign.Result
	var f *os.File
	var cw *campaign.CheckpointWriter
	if resume {
		cp, err := loadFile(out)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume: fall through to a fresh checkpoint.
		case err != nil:
			return nil, err
		default:
			if err := cp.Header.Matches(cfg); err != nil {
				return nil, fmt.Errorf("%s: %w (rerun without -resume to start over)", out, err)
			}
			opt.Skip = cp.Keys()
			prior = cp.Result()
			fmt.Printf("resuming %s: %d cells already done\n", out, len(cp.Cells))
			f, err = os.OpenFile(out, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			// Cut a torn final record before appending, or the first new
			// record would be concatenated onto it and lost with it.
			if err := f.Truncate(cp.ValidSize); err != nil {
				f.Close()
				return nil, err
			}
			cw = campaign.ResumeCheckpointWriter(f)
		}
	}
	if f == nil {
		var err error
		f, err = os.Create(out)
		if err != nil {
			return nil, err
		}
		cw, err = campaign.NewCheckpointWriter(f, cfg)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	defer f.Close()

	opt.OnCell = cw.WriteCell
	res, err := campaign.RunContext(context.Background(), cfg, opt)
	if err != nil {
		return nil, err
	}
	if err := cw.Sync(); err != nil {
		return nil, err
	}
	if prior != nil {
		return campaign.Merge(prior, res)
	}
	return res, nil
}

// mergeFiles loads and merges checkpoint files, verifying they describe the
// same campaign; it returns the merged result and the factorial size the
// header promises.
func mergeFiles(paths []string) (*campaign.Result, int, error) {
	if len(paths) == 0 {
		return nil, 0, fmt.Errorf("-merge needs at least one file")
	}
	var parts []*campaign.Result
	var first *campaign.Checkpoint
	for _, path := range paths {
		cp, err := loadFile(path)
		if err != nil {
			return nil, 0, err
		}
		if first == nil {
			first = cp
		} else if err := cp.Header.Equal(first.Header); err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		parts = append(parts, cp.Result())
	}
	res, err := campaign.Merge(parts...)
	if err != nil {
		return nil, 0, err
	}
	return res, first.Header.Cells, nil
}

func loadFile(path string) (*campaign.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cp, err := campaign.LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cp, nil
}

// printSummary writes the per-cell table and the corner-case list — the
// output that must be byte-identical between a single-process run, a merged
// shard set, and a coordinated jedcoord run.
func printSummary(res *campaign.Result, threshold float64) {
	if err := res.WriteSummary(os.Stdout, threshold); err != nil {
		fail(err)
	}
}

// exportCell reruns replicate 0 of the cell and writes one simulated
// schedule per compared algorithm.
func exportCell(cfg campaign.Config, c campaign.Cell, dir string) error {
	seed := campaign.ReplicateSeed(cfg.Seed, c.Shape, c.DAGSize, c.Cluster, 0)
	g := dag.Generate(c.Shape, dag.DefaultGenOptions(c.DAGSize), rand.New(rand.NewSource(seed)))
	p := platform.Homogeneous(c.Cluster, 1e9)
	base := strings.ReplaceAll(c.Key(), "/", "_")
	for _, name := range cfg.Algos {
		s, err := sched.Lookup(name)
		if err != nil {
			return err
		}
		res, err := s.Schedule(g, p)
		if err != nil {
			return err
		}
		wr, err := res.Execute(sim.ExecOptions{})
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.jed", base, name))
		if err := jedxml.WriteFile(path, wr.Schedule); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
