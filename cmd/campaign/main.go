// Command campaign reruns the paper's case-study-III experiment campaign:
// thousands of scheduler comparisons over DAG shapes, DAG sizes, and
// cluster sizes, printed as a per-cell table plus the corner cases worth
// opening in the viewer — the workflow that surfaced Figure 4.
//
// Usage:
//
//	campaign [-algos cpa,mcpa] [-replicates 8] [-threshold 1.2] [-export dir]
//
// Any registered scheduler may join the comparison (campaign -list prints
// the names). With -export, the worst corner case of each qualifying cell
// is rerun and written as one Jedule XML file per algorithm, ready for
// jeduleview or jedbook.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/jedxml"
	"repro/internal/platform"
	"repro/internal/sched"
	_ "repro/internal/sched/all"
	"repro/internal/sim"
)

func main() {
	var (
		algos      = flag.String("algos", "cpa,mcpa", "comma-separated scheduler names to compare")
		list       = flag.Bool("list", false, "print the registered scheduler names and exit")
		replicates = flag.Int("replicates", 8, "runs per factorial cell")
		seed       = flag.Int64("seed", 1, "campaign seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		threshold  = flag.Float64("threshold", 1.2, "corner-case spread threshold")
		export     = flag.String("export", "", "directory for corner-case schedule exports")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(sched.List(), "\n"))
		return
	}
	cfg := campaign.DefaultConfig()
	cfg.Algos = splitList(*algos)
	cfg.Replicates = *replicates
	cfg.Seed = *seed
	cfg.Workers = *workers

	res, err := campaign.Run(cfg)
	if err != nil {
		fail(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		fail(err)
	}
	corners := res.CornerCases(*threshold)
	fmt.Printf("\n%d corner cases with makespan spread >= %.2f:\n", len(corners), *threshold)
	for _, c := range corners {
		fmt.Printf("  %-20s worst spread %.3f\n", c.Key(), c.MaxSpread)
	}
	if *export == "" || len(corners) == 0 {
		return
	}
	if err := os.MkdirAll(*export, 0o755); err != nil {
		fail(err)
	}
	for _, c := range corners {
		if err := exportCell(cfg, c, *export); err != nil {
			fail(err)
		}
	}
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// exportCell reruns replicate 0 of the cell and writes one simulated
// schedule per compared algorithm.
func exportCell(cfg campaign.Config, c campaign.Cell, dir string) error {
	seed := campaign.ReplicateSeed(cfg.Seed, c.Shape, c.DAGSize, c.Cluster, 0)
	g := dag.Generate(c.Shape, dag.DefaultGenOptions(c.DAGSize), rand.New(rand.NewSource(seed)))
	p := platform.Homogeneous(c.Cluster, 1e9)
	base := strings.ReplaceAll(c.Key(), "/", "_")
	for _, name := range cfg.Algos {
		s, err := sched.Lookup(name)
		if err != nil {
			return err
		}
		res, err := s.Schedule(g, p)
		if err != nil {
			return err
		}
		wr, err := res.Execute(sim.ExecOptions{})
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.jed", base, name))
		if err := jedxml.WriteFile(path, wr.Schedule); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
