// Command campaign reruns the paper's case-study-III experiment campaign:
// thousands of CPA-vs-MCPA comparisons over DAG shapes, DAG sizes, and
// cluster sizes, printed as a per-cell table plus the corner cases worth
// opening in the viewer — the workflow that surfaced Figure 4.
//
// Usage:
//
//	campaign [-replicates 8] [-threshold 1.2] [-export dir]
//
// With -export, the worst corner case of each qualifying cell is rerun and
// written as a pair of Jedule XML files (CPA and MCPA schedules) ready for
// jeduleview or jedbook.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/campaign"
	"repro/internal/dag"
	"repro/internal/jedxml"
	"repro/internal/platform"
	"repro/internal/sched/cpa"
)

func main() {
	var (
		replicates = flag.Int("replicates", 8, "runs per factorial cell")
		seed       = flag.Int64("seed", 1, "campaign seed")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		threshold  = flag.Float64("threshold", 1.2, "corner-case ratio threshold")
		export     = flag.String("export", "", "directory for corner-case schedule exports")
	)
	flag.Parse()
	cfg := campaign.DefaultConfig()
	cfg.Replicates = *replicates
	cfg.Seed = *seed
	cfg.Workers = *workers

	res, err := campaign.Run(cfg)
	if err != nil {
		fail(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		fail(err)
	}
	corners := res.CornerCases(*threshold)
	fmt.Printf("\n%d corner cases with MCPA/CPA ratio >= %.2f:\n", len(corners), *threshold)
	for _, c := range corners {
		fmt.Printf("  %-20s worst ratio %.3f\n", c.Key(), c.MaxRatio)
	}
	if *export == "" || len(corners) == 0 {
		return
	}
	if err := os.MkdirAll(*export, 0o755); err != nil {
		fail(err)
	}
	for _, c := range corners {
		if err := exportCell(cfg, c, *export); err != nil {
			fail(err)
		}
	}
}

// exportCell reruns replicate 0 of the cell and writes both schedules.
func exportCell(cfg campaign.Config, c campaign.Cell, dir string) error {
	seed := cfg.Seed*1_000_003 + int64(c.DAGSize)*7919 + int64(c.Cluster)*104_729 +
		int64(c.Shape)*15_485_863
	g := dag.Generate(c.Shape, dag.DefaultGenOptions(c.DAGSize), rand.New(rand.NewSource(seed)))
	p := platform.Homogeneous(c.Cluster, 1e9)
	base := strings.ReplaceAll(c.Key(), "/", "_")
	for _, v := range []cpa.Variant{cpa.CPA, cpa.MCPA} {
		res, err := cpa.Schedule(g, p, v)
		if err != nil {
			return err
		}
		wr, err := cpa.Execute(res, p)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.jed", base, v))
		if err := jedxml.WriteFile(path, wr.Schedule); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
