// Command jedserve serves a directory of schedule files as pre-registered
// sessions of the multi-session REST API: every *.jed, *.xml, and *.csv
// file directly inside -dir becomes one session, named after the file. New
// sessions can still be created over HTTP, by uploading documents or by
// running any registered scheduler server-side.
//
// Usage:
//
//	jedserve -dir schedules/ [-addr :8080] [-max-sessions 0]
//	jedserve -join http://coordinator:9090 [-worker-name myhost]
//
// Endpoints (see the README's "HTTP API" section for the full table):
//
//	GET    /                          HTML session index
//	GET    /api/v1/sessions           list sessions
//	POST   /api/v1/sessions           create (XML/CSV upload or JSON generate)
//	GET    /api/v1/sessions/{id}/render?format=png|svg|pdf&window=&clusters=...
//	GET    /api/v1/sessions/{id}/stats|tasks|meta|export
//	DELETE /api/v1/sessions/{id}
//	POST   /api/v1/jobs               launch an async campaign job
//	GET    /api/v1/jobs/{id}          poll; DELETE cancels; /result once done
//
// -max-sessions caps the store: when new uploads would exceed the cap, the
// least recently used session is evicted, so a long-lived server survives
// unbounded client traffic. -session-ttl expires sessions idle past the
// given duration. -render-workers bounds the goroutines each rasterization
// may use, and -render-cache-mb sizes the cache of encoded render bodies
// (concurrent identical renders always collapse into one rasterization).
//
// -rate-limit enables per-client-IP throttling of /api/v1/: each client
// accrues that many requests per second up to -rate-burst (default 2× the
// rate); beyond it the server answers 429 with a Retry-After. -workers
// names a static pool of other jedserve instances, turning this server into
// a campaign coordinator: POST /api/v1/campaigns fans a campaign's shards
// out over the pool and merges the results.
//
// -fleet instead coordinates campaigns over an *elastic* worker fleet:
// workers join at /api/v1/workers (run `jedserve -join <this-server>` on
// each machine), hold a heartbeat lease, and pull shards from the
// coordinator's queue — capacity grows and shrinks without editing a flag.
// -min-workers gates each campaign until enough workers have joined;
// -heartbeat-interval and -lease-ttl tune the liveness protocol.
//
// -join turns this process into a pure fleet worker: no sessions, no HTTP
// listener — it registers with the coordinator, heartbeats, and computes
// leased shards until stopped. SIGTERM drains gracefully (finish the
// current shard, deregister, exit); a second signal aborts immediately and
// the coordinator requeues the abandoned shard on lease expiry.
//
// Observability: GET /api/v1/metrics serves the Prometheus text exposition
// (request latency histograms, render stage timings, fleet shard counters),
// exempt from -rate-limit so scrapes survive traffic spikes. -access-log
// writes one JSON line per API request (method, route, status, bytes,
// duration, trace ID, render-cache disposition) to stderr.
// -metrics-interval publishes registry snapshots on the events bus (topic
// "metrics") so SSE consumers get live counters without polling. -pprof
// mounts net/http/pprof at /debug/pprof/ — off by default, it exposes heap
// and CPU profiles. Every request carries an X-Jed-Trace ID (adopted from
// the request header or minted) that campaign dispatch forwards to workers.
//
// -state-dir makes the server durable: session descriptors, job records,
// finished results, and the streamed cells of running campaign jobs are
// journaled into that directory, and a restarted server recovers them —
// sessions re-list (their schedules re-hydrate lazily on first access),
// terminal job results serve byte-identically, and interrupted campaign
// jobs resume from their last journaled cell. Empty (the default) keeps
// the purely in-memory behavior. See the README's "Durable state" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cliutil"
	"repro/internal/fleet"
	"repro/internal/persist"
	_ "repro/internal/sched/all"
)

func main() {
	var (
		dir           = flag.String("dir", "", "directory of schedule files to pre-register (required unless -join)")
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		maxSessions   = flag.Int("max-sessions", 0, "evict least recently used sessions beyond this count (0 = unlimited)")
		sessionTTL    = flag.Duration("session-ttl", 0, "expire sessions idle this long, e.g. 30m (0 = never)")
		renderWorkers = flag.Int("render-workers", 0, "goroutines per rasterization (0 = GOMAXPROCS, 1 = serial)")
		renderCacheMB = flag.Int("render-cache-mb", 64, "render-result cache size in MiB (0 = no body caching)")
		lod           = flag.Bool("lod", false, "default level-of-detail rendering (a request's lod= query parameter overrides)")
		rateLimit     = flag.Float64("rate-limit", 0, "per-client-IP requests per second on /api/v1/ (0 = unlimited)")
		rateBurst     = flag.Int("rate-burst", 0, "per-client burst above -rate-limit (0 = 2x the rate)")
		workers       = flag.String("workers", "", "comma-separated base URLs of remote jedserve workers for POST /api/v1/campaigns (static pool)")
		fleetOn       = flag.Bool("fleet", false, "coordinate campaigns over an elastic worker fleet (workers join at /api/v1/workers)")
		minWorkers    = flag.Int("min-workers", 1, "fleet: wait for this many joined workers before a campaign dispatches")
		heartbeat     = flag.Duration("heartbeat-interval", fleet.DefaultHeartbeatInterval, "fleet: advertised heartbeat interval (a worker silent for 3 intervals is retired)")
		leaseTTL      = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "fleet: how long one worker may hold a shard before it is requeued for stealing")
		stateDir      = flag.String("state-dir", "", "journal sessions and jobs into this directory and recover them on restart (empty = in-memory only)")
		join          = flag.String("join", "", "run as a fleet worker of the coordinator at this base URL (worker mode; excludes -dir, -fleet, -workers)")
		workerName    = flag.String("worker-name", "", "worker mode: name reported to the coordinator (default: hostname)")
		workerPoll    = flag.Duration("worker-poll", 500*time.Millisecond, "worker mode: idle lease-poll pacing")
		pprofOn       = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/ (off by default)")
		metricsEvery  = flag.Duration("metrics-interval", 0, "publish a metrics snapshot on the events bus (topic \"metrics\") at this interval (0 = off)")
		accessLog     = flag.Bool("access-log", false, "write one JSON line per API request to stderr")
	)
	flag.Parse()
	if *join != "" {
		if *dir != "" || *fleetOn || *workers != "" {
			fmt.Fprintln(os.Stderr, "jedserve: -join (worker mode) is mutually exclusive with -dir, -fleet, and -workers")
			os.Exit(2)
		}
		if err := runWorker(*join, *workerName, *workerPoll); err != nil {
			fmt.Fprintln(os.Stderr, "jedserve:", err)
			os.Exit(1)
		}
		return
	}
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *fleetOn && *workers != "" {
		fmt.Fprintln(os.Stderr, "jedserve: -fleet (elastic pull dispatch) and -workers (static pool) are mutually exclusive")
		os.Exit(2)
	}
	opts := serveOptions{
		dir: *dir, addr: *addr,
		maxSessions: *maxSessions, sessionTTL: *sessionTTL,
		renderWorkers: *renderWorkers, renderCacheMB: *renderCacheMB,
		lod: *lod, rateLimit: *rateLimit, rateBurst: *rateBurst,
		workers: *workers,
		fleet:   *fleetOn, minWorkers: *minWorkers,
		heartbeat: *heartbeat, leaseTTL: *leaseTTL,
		stateDir: *stateDir,
		pprof:    *pprofOn, metricsInterval: *metricsEvery, accessLog: *accessLog,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "jedserve:", err)
		os.Exit(1)
	}
}

type serveOptions struct {
	dir, addr                    string
	maxSessions                  int
	sessionTTL                   time.Duration
	renderWorkers, renderCacheMB int
	lod                          bool
	rateLimit                    float64
	rateBurst                    int
	workers                      string
	fleet                        bool
	minWorkers                   int
	heartbeat, leaseTTL          time.Duration
	stateDir                     string
	pprof                        bool
	metricsInterval              time.Duration
	accessLog                    bool
}

func run(o serveOptions) error {
	store := api.NewStore()
	var ps persist.Store
	if o.stateDir != "" {
		var err error
		ps, err = persist.Open(o.stateDir)
		if err != nil {
			return fmt.Errorf("opening state dir: %w", err)
		}
		defer ps.Close()
		store.SetPersist(ps)
	}
	// Register files before recovering: a file present in -dir is the
	// fresher truth, so pre-registered sessions win ID collisions.
	sessions, err := api.RegisterDir(store, o.dir)
	if err != nil {
		return err
	}
	store.SetMaxSessions(o.maxSessions)
	store.SetTTL(o.sessionTTL)
	if ps != nil {
		n, err := store.RecoverSessions()
		if err != nil {
			return fmt.Errorf("recovering sessions: %w", err)
		}
		if n > 0 {
			fmt.Printf("jedserve: recovered %d sessions from %s\n", n, o.stateDir)
		}
	}
	if o.maxSessions > 0 && len(sessions) > o.maxSessions {
		fmt.Fprintf(os.Stderr, "jedserve: warning: %d schedule files but -max-sessions %d; the %d least recently registered were evicted\n",
			len(sessions), o.maxSessions, len(sessions)-o.maxSessions)
	}
	// Print what actually survived the cap, not what was registered.
	for _, sess := range store.List() {
		fmt.Printf("jedserve: session %s <- %s\n", sess.ID, sess.Name)
	}
	srv := api.NewServer(store)
	if ps != nil {
		if err := srv.EnablePersistence(ps); err != nil {
			return fmt.Errorf("recovering jobs: %w", err)
		}
		jr, cr := srv.RecoveredJobs()
		if n := jr.Restored + jr.Resumed + jr.Interrupted + cr.Restored + cr.Resumed + cr.Interrupted; n > 0 {
			fmt.Printf("jedserve: recovered %d jobs (%d restored, %d resumed, %d interrupted)\n",
				n, jr.Restored+cr.Restored, jr.Resumed+cr.Resumed, jr.Interrupted+cr.Interrupted)
		}
	}
	srv.SetRenderWorkers(o.renderWorkers)
	srv.SetRenderCacheBytes(int64(o.renderCacheMB) << 20)
	srv.SetLOD(o.lod)
	srv.SetRateLimit(o.rateLimit, o.rateBurst)
	if pool := cliutil.SplitList(o.workers); len(pool) > 0 {
		srv.SetCoordWorkers(pool)
		fmt.Printf("jedserve: coordinating campaigns over %d workers\n", len(pool))
	}
	if o.fleet {
		m := fleet.NewManager(fleet.Config{
			HeartbeatInterval: o.heartbeat,
			LeaseTTL:          o.leaseTTL,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "jedserve: "+format+"\n", args...)
			},
		})
		srv.SetFleet(m, o.minWorkers)
		fmt.Printf("jedserve: elastic fleet enabled (workers join at /api/v1/workers; campaigns wait for %d)\n", o.minWorkers)
	}
	if o.pprof {
		srv.EnablePprof()
		fmt.Printf("jedserve: pprof mounted at /debug/pprof/\n")
	}
	if o.accessLog {
		srv.SetAccessLog(os.Stderr)
	}
	if o.metricsInterval > 0 {
		stop := srv.StartMetricsPublisher(o.metricsInterval)
		defer stop()
		fmt.Printf("jedserve: publishing metrics snapshots every %v (topic \"metrics\")\n", o.metricsInterval)
	}
	fmt.Printf("jedserve: serving %d sessions on %s (API at /api/v1/, metrics at /api/v1/metrics)\n", store.Len(), o.addr)
	return srv.ListenAndServe(o.addr)
}

// runWorker is worker mode: join the coordinator, heartbeat, pull and
// compute shards. The first SIGTERM/SIGINT drains (finish the current
// shard, deregister, exit 0); the second aborts the shard immediately.
func runWorker(coordinator, name string, poll time.Duration) error {
	if name == "" {
		name, _ = os.Hostname()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "jedserve: signal received, draining (send again to abort)")
		close(drain)
		<-sig
		fmt.Fprintln(os.Stderr, "jedserve: second signal, aborting")
		cancel()
	}()
	err := fleet.RunWorker(ctx, fleet.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Poll:        poll,
		Drain:       drain,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "jedserve: "+format+"\n", args...)
		},
	})
	if errors.Is(err, context.Canceled) {
		// The second-signal hard stop is a requested exit, not a failure.
		return nil
	}
	return err
}
