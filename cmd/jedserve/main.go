// Command jedserve serves a directory of schedule files as pre-registered
// sessions of the multi-session REST API: every *.jed, *.xml, and *.csv
// file directly inside -dir becomes one session, named after the file. New
// sessions can still be created over HTTP, by uploading documents or by
// running any registered scheduler server-side.
//
// Usage:
//
//	jedserve -dir schedules/ [-addr :8080] [-max-sessions 0]
//
// Endpoints (see the README's "HTTP API" section for the full table):
//
//	GET    /                          HTML session index
//	GET    /api/v1/sessions           list sessions
//	POST   /api/v1/sessions           create (XML/CSV upload or JSON generate)
//	GET    /api/v1/sessions/{id}/render?format=png|svg|pdf&window=&clusters=...
//	GET    /api/v1/sessions/{id}/stats|tasks|meta|export
//	DELETE /api/v1/sessions/{id}
//	POST   /api/v1/jobs               launch an async campaign job
//	GET    /api/v1/jobs/{id}          poll; DELETE cancels; /result once done
//
// -max-sessions caps the store: when new uploads would exceed the cap, the
// least recently used session is evicted, so a long-lived server survives
// unbounded client traffic. -session-ttl expires sessions idle past the
// given duration. -render-workers bounds the goroutines each rasterization
// may use, and -render-cache-mb sizes the cache of encoded render bodies
// (concurrent identical renders always collapse into one rasterization).
//
// -rate-limit enables per-client-IP throttling of /api/v1/: each client
// accrues that many requests per second up to -rate-burst (default 2× the
// rate); beyond it the server answers 429 with a Retry-After. -workers
// names a pool of other jedserve instances, turning this server into a
// campaign coordinator: POST /api/v1/campaigns fans a campaign's shards
// out over the pool and merges the results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/api"
	"repro/internal/cliutil"
	_ "repro/internal/sched/all"
)

func main() {
	var (
		dir           = flag.String("dir", "", "directory of schedule files to pre-register (required)")
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		maxSessions   = flag.Int("max-sessions", 0, "evict least recently used sessions beyond this count (0 = unlimited)")
		sessionTTL    = flag.Duration("session-ttl", 0, "expire sessions idle this long, e.g. 30m (0 = never)")
		renderWorkers = flag.Int("render-workers", 0, "goroutines per rasterization (0 = GOMAXPROCS, 1 = serial)")
		renderCacheMB = flag.Int("render-cache-mb", 64, "render-result cache size in MiB (0 = no body caching)")
		lod           = flag.Bool("lod", false, "default level-of-detail rendering (a request's lod= query parameter overrides)")
		rateLimit     = flag.Float64("rate-limit", 0, "per-client-IP requests per second on /api/v1/ (0 = unlimited)")
		rateBurst     = flag.Int("rate-burst", 0, "per-client burst above -rate-limit (0 = 2x the rate)")
		workers       = flag.String("workers", "", "comma-separated base URLs of remote jedserve workers for POST /api/v1/campaigns")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, *addr, *maxSessions, *sessionTTL, *renderWorkers, *renderCacheMB, *lod, *rateLimit, *rateBurst, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "jedserve:", err)
		os.Exit(1)
	}
}

func run(dir, addr string, maxSessions int, sessionTTL time.Duration, renderWorkers, renderCacheMB int, lod bool, rateLimit float64, rateBurst int, workers string) error {
	store := api.NewStore()
	sessions, err := api.RegisterDir(store, dir)
	if err != nil {
		return err
	}
	store.SetMaxSessions(maxSessions)
	store.SetTTL(sessionTTL)
	if maxSessions > 0 && len(sessions) > maxSessions {
		fmt.Fprintf(os.Stderr, "jedserve: warning: %d schedule files but -max-sessions %d; the %d least recently registered were evicted\n",
			len(sessions), maxSessions, len(sessions)-maxSessions)
	}
	// Print what actually survived the cap, not what was registered.
	for _, sess := range store.List() {
		fmt.Printf("jedserve: session %s <- %s\n", sess.ID, sess.Name)
	}
	srv := api.NewServer(store)
	srv.SetRenderWorkers(renderWorkers)
	srv.SetRenderCacheBytes(int64(renderCacheMB) << 20)
	srv.SetLOD(lod)
	srv.SetRateLimit(rateLimit, rateBurst)
	if pool := cliutil.SplitList(workers); len(pool) > 0 {
		srv.SetCoordWorkers(pool)
		fmt.Printf("jedserve: coordinating campaigns over %d workers\n", len(pool))
	}
	fmt.Printf("jedserve: serving %d sessions on %s (API at /api/v1/)\n", store.Len(), addr)
	return srv.ListenAndServe(addr)
}
