// Command jedule is the command-line mode of the tool (paper section
// II-D.2): it renders a Jedule schedule file into PNG, JPEG, PDF, or SVG
// with full control over the color map, output size, alignment, cluster
// subset, and composite-task overlay — ready for batch pipelines that
// produce one graphic per experiment.
//
// Usage:
//
//	jedule -in schedule.jed -out schedule.png [flags]
//
// The output format follows the -out file extension.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/jedxml"
	"repro/internal/render"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jedule:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jedule", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input schedule file (required)")
		out        = fs.String("out", "", "output graphic file: .png .jpg .pdf .svg (required)")
		format     = fs.String("format", "jedule", "input format: "+strings.Join(jedxml.Formats(), ", "))
		width      = fs.Int("width", 1000, "output width in pixels/points")
		height     = fs.Int("height", 600, "output height in pixels/points")
		cmapPath   = fs.String("cmap", "", "color map XML file (default: built-in standard map)")
		gray       = fs.Bool("gray", false, "convert the color map to grayscale")
		aligned    = fs.Bool("aligned", true, "align cluster time axes on the global extent")
		labels     = fs.Bool("labels", true, "draw task id labels when they fit")
		composites = fs.Bool("composites", false, "overlay composite tasks for overlapping intervals")
		clusters   = fs.String("clusters", "", "comma-separated cluster ids to render (default: all)")
		title      = fs.String("title", "", "chart title")
		meta       = fs.Bool("meta", false, "append schedule meta info to the title")
		stats      = fs.Bool("stats", false, "print schedule statistics to stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	sched, err := jedxml.ReadFormat(*format, f)
	f.Close()
	if err != nil {
		return err
	}
	cmap := colormap.Default()
	if *cmapPath != "" {
		cmap, err = colormap.ReadFile(*cmapPath)
		if err != nil {
			return err
		}
	}
	if *gray {
		cmap = cmap.Grayscale()
	}
	opt := render.Options{
		Map: cmap, Labels: *labels, Composites: *composites,
		Title: *title, ShowMeta: *meta,
	}
	if !*aligned {
		opt.Mode = core.ScaledView
	}
	if *clusters != "" {
		for _, part := range strings.Split(*clusters, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -clusters value %q", part)
			}
			opt.Clusters = append(opt.Clusters, id)
		}
	}
	if *stats {
		st := sched.ComputeStats()
		fmt.Printf("tasks=%d hosts=%d makespan=%g utilization=%.3f idle=%g\n",
			st.TaskCount, st.Hosts, st.Makespan, st.Utilization, st.IdleArea)
	}
	if err := render.ToFile(*out, sched, *width, *height, opt); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
