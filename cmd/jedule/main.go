// Command jedule is the command-line mode of the tool (paper section
// II-D.2): it renders a Jedule schedule file into PNG, JPEG, PDF, or SVG
// with full control over the color map, output size, alignment, cluster
// subset, and composite-task overlay — ready for batch pipelines that
// produce one graphic per experiment.
//
// Usage:
//
//	jedule -in schedule.jed -out schedule.png [flags]
//	jedule -sched heft -shape random -nodes 40 -procs 16 -out heft.png
//	jedule -list-schedulers
//
// The output format follows the -out file extension. Instead of reading a
// schedule file, -sched picks any registered scheduling algorithm by name,
// runs it on a generated DAG, simulates the plan, and renders the trace.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/jedxml"
	"repro/internal/platform"
	"repro/internal/render"
	"repro/internal/sched"
	_ "repro/internal/sched/all"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jedule:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jedule", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input schedule file (required)")
		out        = fs.String("out", "", "output graphic file: .png .jpg .pdf .svg (required)")
		format     = fs.String("format", "jedule", "input format: "+strings.Join(jedxml.Formats(), ", "))
		width      = fs.Int("width", 1000, "output width in pixels/points")
		height     = fs.Int("height", 600, "output height in pixels/points")
		cmapPath   = fs.String("cmap", "", "color map XML file (default: built-in standard map)")
		gray       = fs.Bool("gray", false, "convert the color map to grayscale")
		aligned    = fs.Bool("aligned", true, "align cluster time axes on the global extent")
		labels     = fs.Bool("labels", true, "draw task id labels when they fit")
		composites = fs.Bool("composites", false, "overlay composite tasks for overlapping intervals")
		legend     = fs.Bool("legend", false, "draw a task-type color legend along the bottom edge")
		clusters   = fs.String("clusters", "", "comma-separated cluster ids to render (default: all)")
		title      = fs.String("title", "", "chart title")
		meta       = fs.Bool("meta", false, "append schedule meta info to the title")
		stats      = fs.Bool("stats", false, "print schedule statistics to stdout")
		workers    = fs.Int("render-workers", 0, "goroutines for the rasterization (0 = GOMAXPROCS, 1 = serial; output is identical)")
		lod        = fs.Bool("lod", false, "level-of-detail rendering: aggregate sub-pixel tasks into density bands in dense panels")
		window     = fs.String("window", "", "visible time range as min,max (zoom; default: full extent)")
		workloadN  = fs.Int("workload", 0, "render a deterministic synthetic workload trace of N jobs instead of reading -in")
		listScheds = fs.Bool("list-schedulers", false, "print the registered scheduler names and exit")
		schedName  = fs.String("sched", "", "run the named scheduler on a generated DAG instead of reading -in")
		shape      = fs.String("shape", "random", "DAG shape for -sched: serial, wide, long, random, forkjoin")
		nodes      = fs.Int("nodes", 30, "DAG node count for -sched")
		procs      = fs.Int("procs", 16, "cluster size for -sched")
		dagSeed    = fs.Int64("dagseed", 1, "DAG generator seed for -sched")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listScheds {
		fmt.Println(strings.Join(sched.List(), "\n"))
		return nil
	}
	var schedule *core.Schedule
	switch {
	case *workloadN > 0:
		if *out == "" {
			fs.Usage()
			return fmt.Errorf("-out is required with -workload")
		}
		schedule = workload.GenerateSchedule(workload.DefaultGenerateConfig(*workloadN))
	case *schedName != "":
		if *out == "" {
			fs.Usage()
			return fmt.Errorf("-out is required with -sched")
		}
		var err error
		schedule, err = scheduleByName(*schedName, *shape, *nodes, *procs, *dagSeed)
		if err != nil {
			return err
		}
	case *in == "" || *out == "":
		fs.Usage()
		return fmt.Errorf("-in and -out are required")
	default:
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		schedule, err = jedxml.ReadFormat(*format, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	cmap := colormap.Default()
	if *cmapPath != "" {
		var err error
		cmap, err = colormap.ReadFile(*cmapPath)
		if err != nil {
			return err
		}
	}
	if *gray {
		cmap = cmap.Grayscale()
	}
	opt := render.Options{
		Map: cmap, Labels: *labels, Composites: *composites,
		Title: *title, ShowMeta: *meta, Workers: *workers, Legend: *legend,
		LOD: *lod,
	}
	if !*aligned {
		opt.Mode = core.ScaledView
	}
	if *window != "" {
		lo, hi, ok := strings.Cut(*window, ",")
		wlo, err0 := strconv.ParseFloat(strings.TrimSpace(lo), 64)
		whi, err1 := strconv.ParseFloat(strings.TrimSpace(hi), 64)
		if !ok || err0 != nil || err1 != nil || !(wlo < whi) {
			return fmt.Errorf("bad -window %q (want min,max with min < max)", *window)
		}
		opt.Window = &core.Extent{Min: wlo, Max: whi}
	}
	if *clusters != "" {
		for _, part := range strings.Split(*clusters, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -clusters value %q", part)
			}
			opt.Clusters = append(opt.Clusters, id)
		}
	}
	if *stats {
		st := schedule.ComputeStats()
		fmt.Printf("tasks=%d hosts=%d makespan=%g utilization=%.3f idle=%g\n",
			st.TaskCount, st.Hosts, st.Makespan, st.Utilization, st.IdleArea)
	}
	if err := render.ToFile(*out, schedule, *width, *height, opt); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// scheduleByName generates a DAG, runs the registered scheduler on a
// homogeneous cluster, and returns the simulated trace.
func scheduleByName(name, shapeName string, nodes, procs int, seed int64) (*core.Schedule, error) {
	s, err := sched.Lookup(name)
	if err != nil {
		return nil, err
	}
	shape, err := dag.ParseShape(shapeName)
	if err != nil {
		return nil, err
	}
	g := dag.Generate(shape, dag.DefaultGenOptions(nodes), rand.New(rand.NewSource(seed)))
	p := platform.Homogeneous(procs, 1e9)
	res, err := s.Schedule(g, p)
	if err != nil {
		return nil, err
	}
	wr, err := res.Execute(sim.ExecOptions{})
	if err != nil {
		return nil, err
	}
	return wr.Schedule, nil
}
