package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/jedxml"
)

func writeSchedule(t *testing.T, dir string) string {
	t.Helper()
	s := core.NewSingleCluster("c", 4)
	s.Add("a", "computation", 0, 10, 0, 4)
	s.Add("b", "transfer", 5, 8, 0, 2)
	path := dir + "/in.jed"
	if err := jedxml.WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersAllFormats(t *testing.T) {
	dir := t.TempDir()
	in := writeSchedule(t, dir)
	for _, ext := range []string{".png", ".jpg", ".pdf", ".svg"} {
		out := dir + "/out" + ext
		if err := run([]string{"-in", in, "-out", out, "-width", "300", "-height", "200"}); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		fi, err := os.Stat(out)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s: empty or missing output", ext)
		}
	}
}

func TestRunFlags(t *testing.T) {
	dir := t.TempDir()
	in := writeSchedule(t, dir)
	args := []string{
		"-in", in, "-out", dir + "/x.png",
		"-gray", "-aligned=false", "-labels=false",
		"-composites", "-clusters", "0", "-title", "t", "-meta", "-stats",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunListSchedulers(t *testing.T) {
	// -list-schedulers needs neither -in nor -out.
	if err := run([]string{"-list-schedulers"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedulerByName(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"heft", "mcpa2"} {
		out := dir + "/" + name + ".png"
		args := []string{
			"-sched", name, "-shape", "forkjoin", "-nodes", "20",
			"-procs", "8", "-out", out, "-width", "300", "-height", "200",
		}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fi, err := os.Stat(out)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s: empty or missing output", name)
		}
	}
}

func TestRunSchedulerErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-sched", "no-such-algo", "-out", dir + "/x.png"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if err := run([]string{"-sched", "heft", "-shape", "nope", "-out", dir + "/x.png"}); err == nil {
		t.Error("unknown shape accepted")
	}
	if err := run([]string{"-sched", "heft"}); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestRunCustomColorMap(t *testing.T) {
	dir := t.TempDir()
	in := writeSchedule(t, dir)
	cmapPath := dir + "/map.xml"
	f, err := os.Create(cmapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := colormap.Write(f, colormap.Default()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"-in", in, "-out", dir + "/y.png", "-cmap", cmapPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", dir + "/z.png", "-cmap", dir + "/missing.xml"}); err == nil {
		t.Fatal("missing cmap accepted")
	}
}

func TestRunCSVInput(t *testing.T) {
	dir := t.TempDir()
	csvPath := dir + "/in.csv"
	if err := os.WriteFile(csvPath, []byte("cluster,0,c,4\ntask,t,computation,0,2,0,0,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", csvPath, "-out", dir + "/c.png", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeSchedule(t, dir)
	cases := [][]string{
		{},          // missing flags
		{"-in", in}, // missing -out
		{"-in", dir + "/nope.jed", "-out", dir + "/o.png"},     // missing input
		{"-in", in, "-out", dir + "/o.bmp"},                    // bad format
		{"-in", in, "-out", dir + "/o.png", "-clusters", "x"},  // bad clusters
		{"-in", in, "-out", dir + "/o.png", "-format", "nope"}, // bad input format
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%s) accepted", i, strings.Join(args, " "))
		}
	}
}
