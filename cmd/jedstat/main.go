// Command jedstat prints textual reports about Jedule schedule files: the
// summary statistics a developer would otherwise read off the chart, a
// per-type breakdown, a terminal sparkline of the utilization profile, an
// optional CSV export of that profile, and a quantified comparison of two
// schedules (for example before and after a backfilling step).
//
// Usage:
//
//	jedstat schedule.jed                  summary report
//	jedstat -profile 200 schedule.jed     + CSV profile on stdout
//	jedstat -compare other.jed schedule.jed   comparison report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/jedxml"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jedstat:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("jedstat", flag.ContinueOnError)
	var (
		profile = fs.Int("profile", 0, "emit a CSV utilization profile with N samples")
		compare = fs.String("compare", "", "compare against this schedule file")
		hosts   = fs.Bool("hosts", false, "print per-host busy times")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one schedule file required")
	}
	s, err := jedxml.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *compare != "" {
		other, err := jedxml.ReadFile(*compare)
		if err != nil {
			return err
		}
		return stats.WriteComparison(w, *compare, fs.Arg(0), stats.Compare(other, s))
	}
	if err := stats.Report(w, s); err != nil {
		return err
	}
	if *hosts {
		fmt.Fprintln(w, "\ncluster host       busy   fraction")
		for _, l := range stats.HostLoads(s) {
			fmt.Fprintf(w, "%7d %4d %10.4g %9.1f%%\n", l.Cluster, l.Host, l.Busy, 100*l.Fraction)
		}
	}
	if *profile > 0 {
		fmt.Fprintln(w)
		return stats.WriteProfileCSV(w, s, *profile)
	}
	return nil
}
