package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jedxml"
)

func writeSample(t *testing.T, dir, name string, makespan float64) string {
	t.Helper()
	s := core.NewSingleCluster("c", 4)
	s.Add("a", "computation", 0, makespan, 0, 4)
	path := dir + "/" + name
	if err := jedxml.WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir, "s.jed", 10)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"makespan", "utilization", "computation"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestRunHostsAndProfile(t *testing.T) {
	dir := t.TempDir()
	path := writeSample(t, dir, "s.jed", 10)
	var buf bytes.Buffer
	if err := run([]string{"-hosts", "-profile", "5", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cluster host") || !strings.Contains(out, "time,busy_hosts") {
		t.Fatalf("output missing sections:\n%s", out)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	slow := writeSample(t, dir, "slow.jed", 10)
	fast := writeSample(t, dir, "fast.jed", 5)
	var buf bytes.Buffer
	if err := run([]string{"-compare", slow, fast}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup 2.000x") {
		t.Fatalf("comparison output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.jed"}, &buf); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	good := writeSample(t, dir, "g.jed", 1)
	if err := run([]string{"-compare", "/nonexistent.jed", good}, &buf); err == nil {
		t.Error("missing compare file accepted")
	}
	if err := run([]string{"-bogusflag", good}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
