// Command jeduleview is the interactive mode of the tool: it serves a
// schedule file over HTTP with the gestures of the original Swing viewer —
// zoom at the cursor, panning, rubber-band zoom, click-for-task-details,
// cluster selection, fast reread of the file, and export to PNG/PDF/SVG.
// The versioned REST API is mounted at /api/v1/ alongside the viewer, with
// the served file registered as session "default".
//
// Usage:
//
//	jeduleview -in schedule.jed [-addr :8080] [-width 1200] [-height 800]
//	jeduleview -serve-many [-in schedule.jed] [more.jed other.csv ...]
//
// Then open http://localhost:8080/ in a browser. While a scheduling
// algorithm is being developed, rerun the simulation and hit "reread" to
// see the new schedule immediately.
//
// With -serve-many the process serves the multi-session REST API instead of
// the single-schedule viewer: every file named by -in or as a positional
// argument becomes a pre-registered session, and further sessions can be
// created over HTTP (upload or server-side scheduling).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/api"
	_ "repro/internal/sched/all"
	"repro/internal/view"
)

func main() {
	var (
		in            = flag.String("in", "", "Jedule XML schedule file (required unless -serve-many)")
		addr          = flag.String("addr", ":8080", "HTTP listen address")
		width         = flag.Int("width", 1200, "view width in pixels")
		height        = flag.Int("height", 800, "view height in pixels")
		serveMany     = flag.Bool("serve-many", false, "serve the multi-session REST API instead of the single-file viewer")
		sessionTTL    = flag.Duration("session-ttl", 0, "with -serve-many: expire sessions idle this long (0 = never)")
		renderWorkers = flag.Int("render-workers", 0, "goroutines per rasterization (0 = GOMAXPROCS, 1 = serial)")
		renderCacheMB = flag.Int("render-cache-mb", 64, "with -serve-many: render-result cache size in MiB (0 = off)")
		lod           = flag.Bool("lod", false, "level-of-detail rendering: aggregate sub-pixel tasks into density bands (serve-many default; lod= query overrides)")
	)
	flag.Parse()
	if err := run(*in, *addr, *width, *height, *serveMany, *sessionTTL, *renderWorkers, *renderCacheMB, *lod, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "jeduleview:", err)
		os.Exit(1)
	}
}

func run(in, addr string, width, height int, serveMany bool, sessionTTL time.Duration, renderWorkers, renderCacheMB int, lod bool, extra []string) error {
	if serveMany {
		store := api.NewStore()
		files := extra
		if in != "" {
			files = append([]string{in}, extra...)
		}
		for _, path := range files {
			sess, err := api.RegisterFile(store, path)
			if err != nil {
				return err
			}
			fmt.Printf("jeduleview: session %s <- %s\n", sess.ID, path)
		}
		store.SetTTL(sessionTTL)
		srv := api.NewServer(store)
		srv.SetRenderWorkers(renderWorkers)
		srv.SetRenderCacheBytes(int64(renderCacheMB) << 20)
		srv.SetLOD(lod)
		fmt.Printf("jeduleview: serving %d sessions on %s (API at /api/v1/)\n", store.Len(), addr)
		return srv.ListenAndServe(addr)
	}
	if in == "" {
		flag.Usage()
		os.Exit(2)
	}
	vp, err := view.Open(in, width, height)
	if err != nil {
		return err
	}
	vp.Workers = renderWorkers
	vp.LOD = lod
	fmt.Printf("jeduleview: serving %s on %s\n", in, addr)
	return view.NewServer(vp).ListenAndServe(addr)
}
