// Command jeduleview is the interactive mode of the tool: it serves a
// schedule file over HTTP with the gestures of the original Swing viewer —
// zoom at the cursor, panning, rubber-band zoom, click-for-task-details,
// cluster selection, fast reread of the file, and export to PNG/PDF/SVG.
//
// Usage:
//
//	jeduleview -in schedule.jed [-addr :8080] [-width 1200] [-height 800]
//
// Then open http://localhost:8080/ in a browser. While a scheduling
// algorithm is being developed, rerun the simulation and hit "reread" to
// see the new schedule immediately.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/view"
)

func main() {
	var (
		in     = flag.String("in", "", "Jedule XML schedule file (required)")
		addr   = flag.String("addr", ":8080", "HTTP listen address")
		width  = flag.Int("width", 1200, "view width in pixels")
		height = flag.Int("height", 800, "view height in pixels")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	vp, err := view.Open(*in, *width, *height)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jeduleview:", err)
		os.Exit(1)
	}
	fmt.Printf("jeduleview: serving %s on %s\n", *in, *addr)
	if err := view.NewServer(vp).ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "jeduleview:", err)
		os.Exit(1)
	}
}
