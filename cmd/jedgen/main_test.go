package main

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/jedxml"
)

// Fast cases run in milliseconds; the quicksort/workload ones are covered
// by their packages, so exercise only the representative subset here plus
// one full listing of the registry.
func TestGenerateFastCases(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"composite", "cpa", "mcpa", "heft", "heft-flawed", "cra"} {
		var buf bytes.Buffer
		path := dir + "/" + name + ".jed"
		if err := generate(name, path, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := jedxml.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Tasks) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := generate("nope", "", &buf); err == nil {
		t.Error("unknown case accepted")
	}
	if err := generate("composite", "/nonexistent-dir-xyz/x.jed", &buf); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	var names []string
	for k := range cases {
		names = append(names, k)
	}
	sort.Strings(names)
	want := []string{"composite", "cpa", "cra", "heft", "heft-flawed",
		"mcpa", "quicksort", "quicksort-inverse", "workload"}
	if len(names) != len(want) {
		t.Fatalf("cases = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("cases = %v, want %v", names, want)
		}
	}
}
