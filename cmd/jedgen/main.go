// Command jedgen generates Jedule XML schedules from the built-in case
// studies, so the viewer and CLI have realistic inputs without running the
// full figure harness:
//
//	jedgen -case cpa       CPA on the Figure 4 imbalanced DAG
//	jedgen -case mcpa      MCPA on the same DAG (load-imbalance hole)
//	jedgen -case cra       CRA_WORK multi-DAG schedule (Figure 5)
//	jedgen -case heft      HEFT Montage on the Figure 7 platform (Figure 9)
//	jedgen -case heft-flawed  the Figure 8 variant (flawed backbone)
//	jedgen -case quicksort task-pool quicksort, random input (Figure 11)
//	jedgen -case quicksort-inverse  adversarial input (Figure 12)
//	jedgen -case workload  synthetic LLNL Thunder day (Figure 13)
//	jedgen -case composite the composite-task demo (Figure 3)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/jedxml"
)

var cases = map[string]func() (*core.Schedule, error){
	"composite": func() (*core.Schedule, error) { return figures.Fig3Composite(), nil },
	"cpa": func() (*core.Schedule, error) {
		r, err := figures.Fig4()
		if err != nil {
			return nil, err
		}
		return r.CPA, nil
	},
	"mcpa": func() (*core.Schedule, error) {
		r, err := figures.Fig4()
		if err != nil {
			return nil, err
		}
		return r.MCPA, nil
	},
	"cra": func() (*core.Schedule, error) {
		r, err := figures.Fig5()
		if err != nil {
			return nil, err
		}
		return r.Schedule, nil
	},
	"heft": func() (*core.Schedule, error) {
		r, err := figures.Fig8And9()
		if err != nil {
			return nil, err
		}
		return r.Realistic, nil
	},
	"heft-flawed": func() (*core.Schedule, error) {
		r, err := figures.Fig8And9()
		if err != nil {
			return nil, err
		}
		return r.Flawed, nil
	},
	"quicksort": func() (*core.Schedule, error) {
		r, err := figures.Fig11()
		if err != nil {
			return nil, err
		}
		return r.Schedule, nil
	},
	"quicksort-inverse": func() (*core.Schedule, error) {
		r, err := figures.Fig12()
		if err != nil {
			return nil, err
		}
		return r.Schedule, nil
	},
	"workload": func() (*core.Schedule, error) {
		r, err := figures.Fig13()
		if err != nil {
			return nil, err
		}
		return r.Schedule, nil
	},
}

func main() {
	names := make([]string, 0, len(cases))
	for k := range cases {
		names = append(names, k)
	}
	sort.Strings(names)
	var (
		which = flag.String("case", "", fmt.Sprintf("case study to generate %v (required)", names))
		out   = flag.String("out", "", "output Jedule XML file (default: <case>.jed)")
	)
	flag.Parse()
	if _, ok := cases[*which]; !ok {
		flag.Usage()
		os.Exit(2)
	}
	if err := generate(*which, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jedgen:", err)
		os.Exit(1)
	}
}

// generate builds the named case study and writes it to path (default
// "<name>.jed").
func generate(name, path string, w io.Writer) error {
	gen, ok := cases[name]
	if !ok {
		return fmt.Errorf("unknown case %q", name)
	}
	if path == "" {
		path = name + ".jed"
	}
	sched, err := gen()
	if err != nil {
		return err
	}
	if err := jedxml.WriteFile(path, sched); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%s)\n", path, sched)
	return nil
}
