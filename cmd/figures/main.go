// Command figures regenerates every figure of the paper's evaluation into
// an output directory (PNG by default, plus the Figure 6 DOT file), and
// prints the quantitative findings behind each figure — the repository's
// experiment harness in executable form. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	figures [-out out] [-fig N] [-format png|pdf|svg]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/colormap"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/jedxml"
	"repro/internal/raster"
	"repro/internal/render"
)

var (
	outDir = flag.String("out", "out", "output directory")
	only   = flag.Int("fig", 0, "regenerate a single figure (0 = all)")
	format = flag.String("format", "png", "image format: png, pdf, svg")
)

func main() {
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	steps := []struct {
		fig int
		run func() error
	}{
		{1, fig1}, {2, fig2}, {3, fig3}, {4, fig4}, {5, fig5},
		{6, fig6}, {8, fig89}, {11, fig11}, {12, fig12}, {13, fig13},
	}
	for _, s := range steps {
		if *only != 0 && *only != s.fig && !(s.fig == 8 && *only == 9) {
			continue
		}
		if err := s.run(); err != nil {
			fail(fmt.Errorf("figure %d: %w", s.fig, err))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

func path(name string) string {
	return filepath.Join(*outDir, name+"."+*format)
}

func save(name string, s *core.Schedule, opt render.Options, w, h int) error {
	if err := render.ToFile(path(name), s, w, h, opt); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path(name))
	return nil
}

func fig1() error {
	// Figure 1 is the XML listing itself: emit the document.
	p := filepath.Join(*outDir, "fig01_task.jed")
	if err := jedxml.WriteFile(p, figures.Fig1Schedule()); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", p)
	return nil
}

func fig2() error {
	// Figure 2 is the color map listing: emit the standard map.
	p := filepath.Join(*outDir, "fig02_cmap.xml")
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	if err := colormap.Write(f, colormap.Default()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", p)
	return nil
}

func fig3() error {
	return save("fig03_composite", figures.Fig3Composite(),
		render.Options{Labels: true, Title: "composite tasks (computation+transfer overlap)"},
		900, 420)
}

func fig4() error {
	r, err := figures.Fig4()
	if err != nil {
		return err
	}
	fmt.Printf("fig4: makespan cpa=%.2f mcpa=%.2f  utilization cpa=%.3f mcpa=%.3f  mcpa2 chose %s\n",
		r.MakespanCPA, r.MakespanMCPA, r.UtilCPA, r.UtilMCPA, r.MCPA2Chose)
	if err := save("fig04_cpa", r.CPA,
		render.Options{Labels: true, Title: "CPA", ShowMeta: true}, 700, 500); err != nil {
		return err
	}
	if err := save("fig04_mcpa", r.MCPA,
		render.Options{Labels: true, Title: "MCPA (load imbalance)", ShowMeta: true}, 700, 500); err != nil {
		return err
	}
	// The paper's actual Figure 4 layout: both schedules side by side.
	c := raster.New(1400, 520)
	render.SideBySide(c, "CPA (left) vs MCPA (right)",
		[]*core.Schedule{r.CPA, r.MCPA},
		[]render.Options{{Labels: true, Legend: true}, {Labels: true, Legend: true}})
	p := filepath.Join(*outDir, "fig04_side_by_side.png")
	if err := c.WriteFile(p); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", p)
	return nil
}

func fig5() error {
	r, err := figures.Fig5()
	if err != nil {
		return err
	}
	fmt.Printf("fig5: makespan=%.2f idle before/after backfilling = %.1f/%.1f  stretches:",
		r.Result.Makespan, r.IdleBefore, r.IdleAfter)
	for _, a := range r.Result.Apps {
		fmt.Printf(" %.2f", a.Stretch)
	}
	fmt.Println()
	am := figures.AppMap(len(r.Result.Apps))
	if err := save("fig05_cra", r.Schedule,
		render.Options{Map: am, Title: "CRA_WORK, 4 applications, 20 processors"}, 900, 520); err != nil {
		return err
	}
	return save("fig05_cra_backfilled", r.Backfilled,
		render.Options{Map: am, Title: "CRA_WORK after conservative backfilling"}, 900, 520)
}

func fig6() error {
	p := filepath.Join(*outDir, "fig06_montage.dot")
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	if err := figures.Fig6DOT(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", p)
	return nil
}

func fig89() error {
	r, err := figures.Fig8And9()
	if err != nil {
		return err
	}
	fmt.Printf("fig8/9: makespan flawed=%.2f realistic=%.2f  cross-cluster edges %d -> %d  mBackground clusters %d -> %d\n",
		r.MakespanFlawed, r.MakespanRealistic,
		r.CrossEdgesFlawed, r.CrossEdgesRealistic,
		r.BackgroundClustersFlawed, r.BackgroundClustersReal)
	mm := figures.MontageMap()
	if err := save("fig08_heft_flawed", r.Flawed,
		render.Options{Map: mm, Title: "HEFT Montage, flawed backbone latency", ShowMeta: true},
		1000, 700); err != nil {
		return err
	}
	return save("fig09_heft_realistic", r.Realistic,
		render.Options{Map: mm, Title: "HEFT Montage, realistic backbone latency", ShowMeta: true},
		1000, 700)
}

func fig11() error {
	r, err := figures.Fig11()
	if err != nil {
		return err
	}
	fmt.Printf("fig11: makespan=%.3f tasks=%d utilization=%.3f low-util windows=%d\n",
		r.Makespan, r.Executed, r.Utilization(), r.LowUtilizationWindows(5, 400))
	return save("fig11_quicksort_random", r.Schedule,
		render.Options{Title: "quicksort, 10M random integers, 32 workers"}, 1100, 700)
}

func fig12() error {
	r, err := figures.Fig12()
	if err != nil {
		return err
	}
	fmt.Printf("fig12: makespan=%.3f tasks=%d one-busy fraction=%.2f\n",
		r.Makespan, r.Executed, r.BusyFractionWithOneWorker(600))
	return save("fig12_quicksort_inverse", r.Schedule,
		render.Options{Title: "quicksort, 200M inversely sorted integers, middle pivot"}, 1100, 700)
}

func fig13() error {
	r, err := figures.Fig13()
	if err != nil {
		return err
	}
	st := r.Schedule.ComputeStats()
	fmt.Printf("fig13: jobs=%d utilization=%.3f\n", len(r.Schedule.Tasks), st.Utilization)
	return save("fig13_thunder", r.Schedule,
		render.Options{Title: "LLNL Thunder day (synthetic), user 6447 highlighted"}, 1200, 800)
}
