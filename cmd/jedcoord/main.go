// Command jedcoord coordinates one campaign across a pool of remote
// jedserve workers: it splits the factorial into k/n shards, dispatches
// each shard over the workers' /api/v1/jobs surface, reassigns the shards
// of workers that die (bounded by a per-shard attempt budget), and prints
// the merged summary — byte-identical to a single-process `campaign` run
// of the same flags.
//
// Usage:
//
//	jedcoord -workers http://a:8080,http://b:8080 [-shards 4]
//	         [-algos cpa,mcpa] [-replicates 8] [-seed 1] [-threshold 1.2]
//	         [-out merged.jsonl] [-resume] [-max-attempts 3]
//
// Progress goes to stderr; stdout carries only the summary, so it can be
// compared (or piped) exactly like the campaign command's. -out streams
// every fetched cell into a JSONL checkpoint in the cmd/campaign format —
// `campaign -merge merged.jsonl` reads it — and -resume continues a torn
// coordinator run without re-dispatching finished shards.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/coord"
	"repro/internal/jobs"
	_ "repro/internal/sched/all"
)

func main() {
	var (
		workers     = flag.String("workers", "", "comma-separated worker base URLs (required)")
		shards      = flag.Int("shards", 0, "number of k/n shards to dispatch (0 = one per worker)")
		algos       = flag.String("algos", "cpa,mcpa", "comma-separated scheduler names to compare")
		replicates  = flag.Int("replicates", 8, "runs per factorial cell")
		seed        = flag.Int64("seed", 1, "campaign seed")
		threshold   = flag.Float64("threshold", 1.2, "corner-case spread threshold")
		out         = flag.String("out", "", "stream fetched cells to this JSONL checkpoint file")
		resume      = flag.Bool("resume", false, "skip the shards already complete in -out and append")
		maxAttempts = flag.Int("max-attempts", 3, "dispatch attempts per shard before the run fails")
		poll        = flag.Duration("poll", 200*time.Millisecond, "poll pacing against workers without long-poll support")
		quiet       = flag.Bool("quiet", false, "suppress progress lines on stderr")
	)
	flag.Parse()
	if *workers == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *out == "" {
		fail(fmt.Errorf("-resume requires -out"))
	}

	cfg := coord.Config{
		Workers: cliutil.SplitList(*workers),
		Spec: jobs.CampaignSpec{
			Algos:      cliutil.SplitList(*algos),
			Replicates: *replicates,
			Seed:       *seed,
		},
		Shards:      *shards,
		MaxAttempts: *maxAttempts,
		Poll:        *poll,
		Checkpoint:  *out,
		Resume:      *resume,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	c, err := coord.New(cfg)
	if err != nil {
		fail(err)
	}

	// Interrupt cancels the run; in-flight remote jobs are cancelled best
	// effort, and -out keeps the fetched shards for a later -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := c.Run(ctx)
	if err != nil {
		fail(err)
	}
	if err := res.WriteSummary(os.Stdout, *threshold); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "jedcoord:", err)
	os.Exit(1)
}
