// Command jedcoord coordinates one campaign across remote jedserve workers
// and prints the merged summary — byte-identical to a single-process
// `campaign` run of the same flags. It speaks two dispatch models:
//
// Static pool (-workers): the factorial is split into k/n shards and each
// shard is pushed over the listed workers' /api/v1/jobs surface; workers
// that die are retired after a health probe and their shards reassigned,
// bounded by a per-shard attempt budget.
//
// Elastic fleet (-fleet): jedcoord listens on the given address and workers
// join it (`jedserve -join http://host:port`). Joined workers hold a
// heartbeat lease and *pull* shards from the coordinator's queue, so a fast
// machine naturally takes more of the campaign than a slow one; a shard
// leased past -lease-ttl is requeued for another worker to steal, and
// workers may join or leave mid-campaign. -min-workers gates dispatch until
// enough workers have joined.
//
// Usage:
//
//	jedcoord -workers http://a:8080,http://b:8080 [-shards 4]
//	jedcoord -fleet 127.0.0.1:9090 [-min-workers 2] [-shards 8]
//	         [-heartbeat-interval 5s] [-lease-ttl 2m]
//	         [-algos cpa,mcpa] [-replicates 8] [-seed 1] [-threshold 1.2]
//	         [-out merged.jsonl] [-resume] [-max-attempts 3]
//
// Exactly one of -workers and -fleet must be given. Progress goes to
// stderr; stdout carries only the summary, so it can be compared (or piped)
// exactly like the campaign command's. -out streams every fetched cell into
// a JSONL checkpoint in the cmd/campaign format — `campaign -merge
// merged.jsonl` reads it — and -resume continues a torn coordinator run
// without re-dispatching finished shards. In fleet mode GET /api/v1/meta on
// the fleet address reports the fleet counters.
//
// Observability: every run mints a trace ID (printed on stderr) and sends it
// as X-Jed-Trace on each worker hop, so one coordinator run is attributable
// in every worker's access log; -v prints the per-shard span breakdown after
// the run. In fleet mode GET /api/v1/metrics on the fleet address serves the
// coordinator's registry (shard timings, fleet counters, worker-protocol
// request metrics) in the Prometheus text format, and -pprof mounts
// /debug/pprof/ there.
//
// -state-dir with -run-id journals the run's identity header and every
// fetched cell into a shared persistence directory (the jedserve
// -state-dir format) instead of — or alongside — the -out file, so a
// coordinator restarted on any machine that sees the directory resumes
// with -resume from exactly where its predecessor stopped.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/coord"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/persist"
	_ "repro/internal/sched/all"
)

func main() {
	var (
		workers     = flag.String("workers", "", "comma-separated worker base URLs (static pool mode)")
		fleetAddr   = flag.String("fleet", "", "listen address for the elastic worker fleet, e.g. :9090 (fleet mode)")
		minWorkers  = flag.Int("min-workers", 1, "fleet: wait for this many joined workers before dispatching")
		heartbeat   = flag.Duration("heartbeat-interval", fleet.DefaultHeartbeatInterval, "fleet: advertised heartbeat interval (a worker silent for 3 intervals is retired)")
		leaseTTL    = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "fleet: how long one worker may hold a shard before it is requeued for stealing")
		probeTO     = flag.Duration("probe-timeout", 2*time.Second, "static pool: health-probe timeout deciding whether a failing worker is retired")
		shards      = flag.Int("shards", 0, "number of k/n shards to dispatch (0 = one per worker, or 4x -min-workers in fleet mode)")
		algos       = flag.String("algos", "cpa,mcpa", "comma-separated scheduler names to compare")
		replicates  = flag.Int("replicates", 8, "runs per factorial cell")
		seed        = flag.Int64("seed", 1, "campaign seed")
		threshold   = flag.Float64("threshold", 1.2, "corner-case spread threshold")
		out         = flag.String("out", "", "stream fetched cells to this JSONL checkpoint file")
		stateDir    = flag.String("state-dir", "", "journal run progress into this shared persistence directory (requires -run-id)")
		runID       = flag.String("run-id", "", "run name inside -state-dir; reuse it with -resume to continue that run")
		resume      = flag.Bool("resume", false, "skip the shards already complete in -out / the -state-dir journal and append")
		maxAttempts = flag.Int("max-attempts", 3, "dispatch attempts per shard before the run fails")
		poll        = flag.Duration("poll", 200*time.Millisecond, "poll pacing against workers without long-poll support")
		quiet       = flag.Bool("quiet", false, "suppress progress lines on stderr")
		pprofOn     = flag.Bool("pprof", false, "fleet mode: mount /debug/pprof/ on the fleet address (off by default)")
		verbose     = flag.Bool("v", false, "print the per-shard span breakdown on stderr after the run")
	)
	flag.Parse()
	if (*workers == "") == (*fleetAddr == "") {
		fmt.Fprintln(os.Stderr, "jedcoord: exactly one of -workers (static pool) and -fleet (elastic fleet) is required")
		flag.Usage()
		os.Exit(2)
	}
	if (*stateDir == "") != (*runID == "") {
		fail(fmt.Errorf("-state-dir and -run-id go together"))
	}
	if *resume && *out == "" && *stateDir == "" {
		fail(fmt.Errorf("-resume requires -out or -state-dir"))
	}

	// Every dispatch carries this run's trace ID in X-Jed-Trace, so the
	// coordinator's work is attributable in each worker's access log, and
	// every completed shard appends a timed span for the -v breakdown.
	reg := obs.NewRegistry()
	trace := obs.NewTrace("")

	cfg := coord.Config{
		Spec: jobs.CampaignSpec{
			Algos:      cliutil.SplitList(*algos),
			Replicates: *replicates,
			Seed:       *seed,
		},
		Shards:       *shards,
		MaxAttempts:  *maxAttempts,
		Poll:         *poll,
		ProbeTimeout: *probeTO,
		Checkpoint:   *out,
		Resume:       *resume,
		Metrics:      reg,
		Trace:        trace,
	}
	if *stateDir != "" {
		ps, err := persist.Open(*stateDir)
		if err != nil {
			fail(fmt.Errorf("opening state dir: %w", err))
		}
		defer ps.Close()
		cfg.Persist = ps
		cfg.RunID = *runID
	}
	logf := func(string, ...any) {}
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		cfg.Logf = logf
	}

	// Interrupt cancels the run; in-flight work is cancelled or requeued best
	// effort, and -out keeps the fetched shards for a later -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var m *fleet.Manager
	if *fleetAddr != "" {
		m = fleet.NewManager(fleet.Config{
			HeartbeatInterval: *heartbeat,
			LeaseTTL:          *leaseTTL,
			Logf:              cfg.Logf,
		})
		fleet.RegisterMetrics(reg, m)
		srv, err := serveFleet(m, *fleetAddr, reg, *pprofOn)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		logf("jedcoord: fleet listening on %s (workers join with `jedserve -join http://<this-host>%s`; metrics at /api/v1/metrics)",
			srv.Addr, srv.Addr)
		cfg.Fleet = m
		cfg.MinWorkers = *minWorkers
		if *minWorkers > 1 {
			logf("jedcoord: waiting for %d workers to join", *minWorkers)
		}
	} else {
		cfg.Workers = cliutil.SplitList(*workers)
	}

	c, err := coord.New(cfg)
	if err != nil {
		fail(err)
	}
	logf("jedcoord: trace %s", trace.ID())
	res, err := c.Run(ctx)
	if *verbose {
		for _, sp := range trace.Spans() {
			fmt.Fprintf(os.Stderr, "jedcoord: span %-28s %12v\n", sp.Name, sp.Duration.Round(time.Microsecond))
		}
	}
	if m != nil {
		st := m.Stats()
		logf("jedcoord: fleet: %d joined, %d retired, %d left; %d leases granted, %d expired, %d shards stolen, %d duplicates discarded",
			st.WorkersJoined, st.WorkersRetired, st.WorkersLeft,
			st.LeasesGranted, st.LeasesExpired, st.ShardsStolen, st.DuplicatesDiscarded)
	}
	if err != nil {
		fail(err)
	}
	if err := res.WriteSummary(os.Stdout, *threshold); err != nil {
		fail(err)
	}
}

// serveFleet binds the fleet address and serves the worker protocol, a
// minimal GET /api/v1/meta with the fleet counters, and the Prometheus
// metrics endpoint, all measured by the obs middleware. It returns once the
// listener is bound, so "fleet listening" is never printed before workers
// could actually join.
func serveFleet(m *fleet.Manager, addr string, reg *obs.Registry, pprofOn bool) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	fh := fleet.Handler(m)
	mux.Handle("/api/v1/workers", fh)
	mux.Handle("/api/v1/workers/", fh)
	mux.HandleFunc("GET /api/v1/meta", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"fleet": m.Stats()}) //nolint:errcheck
	})
	mux.HandleFunc("GET /api/v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	h := obs.Middleware(mux, obs.MiddlewareOptions{Registry: reg, RouteLabel: fleetRouteLabel})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: h}
	go srv.Serve(ln) //nolint:errcheck // Close on exit surfaces ErrServerClosed
	return srv, nil
}

// fleetRouteLabel bounds the route label space of the coordinator's small
// surface: worker IDs collapse to {id} so cardinality tracks the protocol,
// not the fleet size.
func fleetRouteLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/api/v1/workers", "/api/v1/meta", "/api/v1/metrics":
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	if rest, ok := strings.CutPrefix(p, "/api/v1/workers/"); ok {
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			return "/api/v1/workers/{id}"
		}
		switch sub := rest[i+1:]; sub {
		case "heartbeat", "lease", "complete", "drain":
			return "/api/v1/workers/{id}/" + sub
		}
	}
	return "other"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "jedcoord:", err)
	os.Exit(1)
}
